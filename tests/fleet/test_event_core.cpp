// Bit-identity pinning for the event-driven fleet core: FleetEnv::run (the
// time-ordered event heap) must reproduce run_lockstep (the per-arrival
// advance-everyone oracle it replaced) exactly — every summary field, every
// per-node summary, every merged invocation record — on faultless runs,
// fault-injected runs with crash windows, and TTL-expiry-heavy workloads,
// across every standard router (which also cross-checks the FleetIndex fast
// paths against the lockstep loop's linear scans).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bench/common.hpp"
#include "faults/fault_plan.hpp"
#include "fleet/fleet_env.hpp"
#include "fleet/router.hpp"
#include "policies/baselines.hpp"
#include "testing/fixtures.hpp"

namespace mlcr {
namespace {

using testing::TinyWorld;

void expect_summaries_identical(const fleet::FleetSummary& a,
                                const fleet::FleetSummary& b,
                                const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(a.router, b.router);
  EXPECT_EQ(a.system, b.system);
  EXPECT_EQ(a.nodes, b.nodes);
  EXPECT_EQ(a.total.invocations, b.total.invocations);
  EXPECT_EQ(a.total.total_latency_s, b.total.total_latency_s);
  EXPECT_EQ(a.total.average_latency_s, b.total.average_latency_s);
  EXPECT_EQ(a.total.cold_starts, b.total.cold_starts);
  EXPECT_EQ(a.total.warm_l1, b.total.warm_l1);
  EXPECT_EQ(a.total.warm_l2, b.total.warm_l2);
  EXPECT_EQ(a.total.warm_l3, b.total.warm_l3);
  EXPECT_EQ(a.total.peak_pool_mb, b.total.peak_pool_mb);
  EXPECT_EQ(a.total.evictions, b.total.evictions);
  EXPECT_EQ(a.total.rejections, b.total.rejections);
  EXPECT_EQ(a.total.failed, b.total.failed);
  EXPECT_EQ(a.total.retries, b.total.retries);
  EXPECT_EQ(a.routing_imbalance, b.routing_imbalance);
  EXPECT_EQ(a.lost, b.lost);
  EXPECT_EQ(a.rerouted, b.rerouted);
  EXPECT_EQ(a.node_crashes, b.node_crashes);
  EXPECT_EQ(a.node_recoveries, b.node_recoveries);
  ASSERT_EQ(a.per_node.size(), b.per_node.size());
  for (std::size_t i = 0; i < a.per_node.size(); ++i) {
    SCOPED_TRACE("node " + std::to_string(i));
    EXPECT_EQ(a.per_node[i].invocations, b.per_node[i].invocations);
    EXPECT_EQ(a.per_node[i].total_latency_s, b.per_node[i].total_latency_s);
    EXPECT_EQ(a.per_node[i].cold_starts, b.per_node[i].cold_starts);
    EXPECT_EQ(a.per_node[i].warm_l1, b.per_node[i].warm_l1);
    EXPECT_EQ(a.per_node[i].warm_l2, b.per_node[i].warm_l2);
    EXPECT_EQ(a.per_node[i].warm_l3, b.per_node[i].warm_l3);
    EXPECT_EQ(a.per_node[i].peak_pool_mb, b.per_node[i].peak_pool_mb);
    EXPECT_EQ(a.per_node[i].evictions, b.per_node[i].evictions);
    EXPECT_EQ(a.per_node[i].failed, b.per_node[i].failed);
    EXPECT_EQ(a.per_node[i].retries, b.per_node[i].retries);
  }
  const auto& ra = a.merged.records();
  const auto& rb = b.merged.records();
  ASSERT_EQ(ra.size(), rb.size());
  for (std::size_t i = 0; i < ra.size(); ++i) {
    SCOPED_TRACE("record " + std::to_string(i));
    EXPECT_EQ(ra[i].seq, rb[i].seq);
    EXPECT_EQ(ra[i].function, rb[i].function);
    EXPECT_EQ(ra[i].container, rb[i].container);
    EXPECT_EQ(ra[i].match, rb[i].match);
    EXPECT_EQ(ra[i].cold, rb[i].cold);
    EXPECT_EQ(ra[i].latency_s, rb[i].latency_s);
    EXPECT_EQ(ra[i].failed, rb[i].failed);
    EXPECT_EQ(ra[i].attempts, rb[i].attempts);
  }
}

/// Run the same (trace, config, router spec) through the event core and the
/// lockstep oracle on fresh fleets and require identical summaries.
void expect_event_matches_lockstep(const fstartbench::Benchmark& bench,
                                   const sim::StartupCostModel& cost,
                                   const sim::Trace& trace,
                                   const fleet::FleetConfig& cfg) {
  for (const auto& spec : fleet::standard_routers(/*seed=*/7)) {
    fleet::FleetEnv event_env(
        bench.functions, bench.catalog, cost, cfg,
        fleet::uniform_system(policies::make_greedy_match_system));
    fleet::FleetEnv lockstep_env(
        bench.functions, bench.catalog, cost, cfg,
        fleet::uniform_system(policies::make_greedy_match_system));
    const auto event_router = spec.make();
    const auto lockstep_router = spec.make();
    const auto ev = event_env.run(trace, *event_router);
    const auto ls = lockstep_env.run_lockstep(trace, *lockstep_router);
    expect_summaries_identical(ev, ls, spec.name);
  }
}

TEST(FleetEventCore, MatchesLockstepFaultless) {
  const auto bench = fstartbench::make_benchmark();
  const sim::StartupCostModel cost(bench.catalog,
                                   fstartbench::default_cost_config());
  util::Rng trace_rng(33);
  const sim::Trace trace =
      fstartbench::make_overall_workload(bench, 200, trace_rng);
  for (const std::size_t nodes : {std::size_t{1}, std::size_t{3},
                                  std::size_t{8}}) {
    SCOPED_TRACE(nodes);
    fleet::FleetConfig cfg;
    cfg.nodes = nodes;
    cfg.node_env.pool_capacity_mb = 2400.0 / static_cast<double>(nodes);
    cfg.seed = 5;
    expect_event_matches_lockstep(bench, cost, trace, cfg);
  }
}

TEST(FleetEventCore, MatchesLockstepWithFaults) {
  const auto bench = fstartbench::make_benchmark();
  const sim::StartupCostModel cost(bench.catalog,
                                   fstartbench::default_cost_config());
  util::Rng trace_rng(44);
  const sim::Trace trace =
      fstartbench::make_overall_workload(bench, 200, trace_rng);

  fleet::FleetConfig cfg;
  cfg.nodes = 4;
  cfg.node_env.pool_capacity_mb = 700.0;
  cfg.seed = 9;
  cfg.faults.startup_failure_prob = 0.2;
  cfg.faults.retry.max_attempts = 3;
  util::Rng crash_rng(17);
  cfg.faults.crashes = faults::sample_crash_windows(
      cfg.nodes, trace.span_s(), /*crashes_per_node=*/2.0,
      /*mean_downtime_s=*/40.0, /*max_concurrent_down=*/3, crash_rng);
  ASSERT_FALSE(cfg.faults.crashes.empty());
  expect_event_matches_lockstep(bench, cost, trace, cfg);
}

/// Sparse arrivals with gaps far beyond the keep-alive TTL force the event
/// core through its TTL-expiry path (per-node deadline events) where the
/// lockstep loop expires containers during its per-arrival sweep.
TEST(FleetEventCore, MatchesLockstepAcrossTtlExpiries) {
  TinyWorld world;
  std::vector<sim::Invocation> invs;
  double t = 0.0;
  for (int i = 0; i < 40; ++i) {
    const auto fn = i % 2 == 0 ? world.fn_py_flask : world.fn_js;
    invs.push_back(TinyWorld::inv(fn, t, 0.5));
    // Alternate tight bursts (warm reuse) with long gaps (TTL expiry).
    t += (i % 4 == 3) ? 900.0 : 2.0;
  }
  const sim::Trace trace(std::move(invs));

  fleet::FleetConfig cfg;
  cfg.nodes = 3;
  cfg.node_env.pool_capacity_mb = 4096.0;
  cfg.seed = 3;
  const auto bench_like = world;
  for (const auto& spec : fleet::standard_routers(/*seed=*/5)) {
    fleet::FleetEnv event_env(
        bench_like.functions, bench_like.catalog, bench_like.cost_model(),
        cfg, fleet::uniform_system(policies::make_greedy_match_system));
    fleet::FleetEnv lockstep_env(
        bench_like.functions, bench_like.catalog, bench_like.cost_model(),
        cfg, fleet::uniform_system(policies::make_greedy_match_system));
    const auto event_router = spec.make();
    const auto lockstep_router = spec.make();
    expect_summaries_identical(event_env.run(trace, *event_router),
                               lockstep_env.run_lockstep(trace,
                                                         *lockstep_router),
                               spec.name);
  }
}

/// set_fault_plan must behave exactly like constructing with the plan in
/// the config (the pre-sorted fault event list is rebuilt, not stale).
TEST(FleetEventCore, SetFaultPlanMatchesConstructionPlan) {
  const auto bench = fstartbench::make_benchmark();
  const sim::StartupCostModel cost(bench.catalog,
                                   fstartbench::default_cost_config());
  util::Rng trace_rng(55);
  const sim::Trace trace =
      fstartbench::make_overall_workload(bench, 150, trace_rng);

  faults::FaultPlan plan;
  util::Rng crash_rng(23);
  plan.crashes = faults::sample_crash_windows(
      3, trace.span_s(), /*crashes_per_node=*/1.5, /*mean_downtime_s=*/30.0,
      /*max_concurrent_down=*/2, crash_rng);
  ASSERT_FALSE(plan.crashes.empty());

  fleet::FleetConfig cfg;
  cfg.nodes = 3;
  cfg.node_env.pool_capacity_mb = 800.0;
  cfg.seed = 12;

  fleet::FleetConfig cfg_with_plan = cfg;
  cfg_with_plan.faults = plan;
  fleet::FleetEnv constructed(
      bench.functions, bench.catalog, cost, cfg_with_plan,
      fleet::uniform_system(policies::make_greedy_match_system));
  fleet::FleetEnv updated(
      bench.functions, bench.catalog, cost, cfg,
      fleet::uniform_system(policies::make_greedy_match_system));
  updated.set_fault_plan(plan);

  fleet::LeastOutstandingRouter ra;
  fleet::LeastOutstandingRouter rb;
  expect_summaries_identical(constructed.run(trace, ra),
                             updated.run(trace, rb), "set_fault_plan");
}

}  // namespace
}  // namespace mlcr
