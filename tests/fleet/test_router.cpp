// Router policies: determinism, range, and the placement properties each
// policy promises (round-robin cycling, least-outstanding load tracking,
// consistent-hash stability + affinity, warm-aware match chasing).
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "faults/fault_plan.hpp"
#include "fleet/fleet_env.hpp"
#include "fleet/router.hpp"
#include "testing/fixtures.hpp"

namespace mlcr {
namespace {

using testing::TinyWorld;

fleet::FleetEnv make_fleet(const TinyWorld& world, std::size_t nodes,
                           double pool_mb = 4096.0) {
  fleet::FleetConfig cfg;
  cfg.nodes = nodes;
  cfg.node_env.pool_capacity_mb = pool_mb;
  cfg.seed = 5;
  return fleet::FleetEnv(
      world.functions, world.catalog, world.cost_model(), cfg,
      fleet::uniform_system(policies::make_greedy_match_system));
}

TEST(Router, RoundRobinCyclesThroughNodes) {
  const TinyWorld world;
  auto env = make_fleet(world, 3);
  fleet::RoundRobinRouter router;
  router.on_episode_start(env);
  const auto inv = TinyWorld::inv(world.fn_py_flask, 0.0);
  for (std::size_t i = 0; i < 7; ++i)
    EXPECT_EQ(router.route(env, inv), i % 3);
}

TEST(Router, RandomStaysInRangeAndIsSeedDeterministic) {
  const TinyWorld world;
  auto env = make_fleet(world, 4);
  const auto inv = TinyWorld::inv(world.fn_py_flask, 0.0);

  auto sequence = [&](std::uint64_t seed) {
    fleet::RandomRouter router(seed);
    router.on_episode_start(env);
    std::vector<std::size_t> out;
    for (int i = 0; i < 50; ++i) out.push_back(router.route(env, inv));
    return out;
  };
  const auto a = sequence(3);
  const auto b = sequence(3);
  EXPECT_EQ(a, b);
  for (const std::size_t node : a) EXPECT_LT(node, 4U);
  // All four nodes should appear in 50 draws.
  EXPECT_EQ(std::set<std::size_t>(a.begin(), a.end()).size(), 4U);
}

TEST(Router, LeastOutstandingPicksIdleNode) {
  const TinyWorld world;
  auto env = make_fleet(world, 2);
  fleet::LeastOutstandingRouter router;
  router.on_episode_start(env);

  // Run a short trace through warm-aware-free routing by hand: send one
  // long-running invocation to node 0 via a full episode, then check the
  // router prefers the idle node 1 while node 0 is busy.
  const sim::Trace trace = TinyWorld::make_trace(
      {TinyWorld::inv(world.fn_py_flask, 0.0, /*exec_s=*/100.0),
       TinyWorld::inv(world.fn_py_numpy, 0.1, /*exec_s=*/100.0)});
  // Route manually through the fleet run: both policies below exercise the
  // fleet; here we only check the router's tie-breaking and load logic via
  // a run that leaves node occupancy observable through the summary.
  const auto summary = env.run(trace, router);
  ASSERT_EQ(summary.per_node.size(), 2U);
  // First invocation goes to node 0 (tie -> lowest index); while it is
  // still executing, the second must go to node 1.
  EXPECT_EQ(summary.per_node[0].invocations, 1U);
  EXPECT_EQ(summary.per_node[1].invocations, 1U);
}

TEST(Router, ConsistentHashIsStableAndColocatesSharedStacks) {
  const TinyWorld world;
  auto env = make_fleet(world, 4);
  fleet::ConsistentHashRouter router;
  router.on_episode_start(env);

  const auto flask = TinyWorld::inv(world.fn_py_flask, 0.0);
  const auto numpy = TinyWorld::inv(world.fn_py_numpy, 0.0);
  const auto js = TinyWorld::inv(world.fn_js, 0.0);

  // Same function always maps to the same node.
  EXPECT_EQ(router.route(env, flask), router.route(env, flask));
  // Functions sharing OS + language (L2 pair) colocate: the affinity key
  // excludes the runtime level by design.
  EXPECT_EQ(router.route(env, flask), router.route(env, numpy));
  // A different language stack is allowed to map elsewhere (not asserted:
  // hashing may collide), but the mapping must be deterministic.
  EXPECT_EQ(router.route(env, js), router.route(env, js));
}

TEST(Router, ConsistentHashMovesFewKeysWhenFleetGrows) {
  const TinyWorld world;
  auto env4 = make_fleet(world, 4);
  auto env5 = make_fleet(world, 5);
  fleet::ConsistentHashRouter router(/*virtual_nodes=*/128);

  // With only 4 function types the key space is tiny; use all of them and
  // check that growing the fleet does not reshuffle every assignment (the
  // whole point of the ring vs. modulo hashing).
  const std::vector<sim::FunctionTypeId> fns = {
      world.fn_py_flask, world.fn_py_numpy, world.fn_js, world.fn_other_os};
  router.on_episode_start(env4);
  std::vector<std::size_t> before;
  for (const auto fn : fns)
    before.push_back(router.route(env4, TinyWorld::inv(fn, 0.0)));
  router.on_episode_start(env5);
  std::size_t moved = 0;
  for (std::size_t i = 0; i < fns.size(); ++i)
    if (router.route(env5, TinyWorld::inv(fns[i], 0.0)) != before[i]) ++moved;
  EXPECT_LE(moved, fns.size() - 1) << "growing 4->5 nodes moved every key";
}

TEST(Router, WarmAwareRoutesToBestMatch) {
  const TinyWorld world;
  auto env = make_fleet(world, 3);
  fleet::WarmAwareRouter router;
  router.on_episode_start(env);

  // Seed node 2 with a warm py-flask container by running a trace where
  // round-robin would not land fn_py_flask there: drive the fleet with a
  // short episode, then inspect routing decisions inside a second episode.
  // Simpler: run one episode where the only invocation lands on node 0 (all
  // pools empty -> least-outstanding fallback -> node 0), then check the
  // next invocation of an L2-compatible function routes back to node 0.
  const sim::Trace trace = TinyWorld::make_trace(
      {TinyWorld::inv(world.fn_py_flask, 0.0, /*exec_s=*/0.1),
       TinyWorld::inv(world.fn_py_numpy, 60.0, /*exec_s=*/0.1),
       TinyWorld::inv(world.fn_other_os, 61.0, /*exec_s=*/0.1)});
  const auto summary = env.run(trace, router);
  ASSERT_EQ(summary.per_node.size(), 3U);
  // fn_py_flask cold-starts on node 0; fn_py_numpy finds its L2 match there;
  // fn_other_os matches nothing anywhere and falls back to the least
  // outstanding node — node 1 (node 0 may still be admitting, but both are
  // idle, so lowest index among idle nodes: node 1 only if node 0 busy;
  // with exec 0.1s node 0 is idle again, so fallback picks node 0 or 1 by
  // busy count = 0 tie -> node 0... assert via totals instead).
  EXPECT_EQ(summary.total.invocations, 3U);
  EXPECT_EQ(summary.per_node[0].invocations +
                summary.per_node[1].invocations +
                summary.per_node[2].invocations,
            3U);
  // The L2 reuse must have happened: exactly one warm start at level 2.
  EXPECT_EQ(summary.total.warm_l2, 1U);
  EXPECT_EQ(summary.total.cold_starts, 2U);
}

/// A fleet whose node 0 is down from t=2 to t=7 (recovery mid-trace), for
/// the failover/health-aware comparisons below.
fleet::FleetEnv make_crashy_fleet(const TinyWorld& world) {
  fleet::FleetConfig cfg;
  cfg.nodes = 4;
  cfg.node_env.pool_capacity_mb = 4096.0;
  cfg.seed = 5;
  cfg.faults.crashes.push_back({0, 2.0, 7.0, false, faults::kNoDomain});
  return fleet::FleetEnv(
      world.functions, world.catalog, world.cost_model(), cfg,
      fleet::uniform_system(policies::make_greedy_match_system));
}

sim::Trace crashy_trace(const TinyWorld& world) {
  std::vector<sim::Invocation> invs;
  for (int i = 0; i <= 120; ++i)
    invs.push_back(TinyWorld::inv(world.fn_py_flask, 0.25 * i, 0.1));
  return sim::Trace(std::move(invs));
}

TEST(Router, HealthAwareAvoidsRecoveredNodeLongerThanFailover) {
  const TinyWorld world;
  const sim::Trace trace = crashy_trace(world);

  auto run = [&](std::unique_ptr<fleet::Router> router) {
    auto env = make_crashy_fleet(world);
    return env.run(trace, *router);
  };
  const auto failover = run(std::make_unique<fleet::FailoverRouter>(
      std::make_unique<fleet::RoundRobinRouter>()));
  // A slow EWMA (alpha 0.05) keeps node 0's failure estimate above the 0.3
  // threshold for ~15 routing decisions after it rejoins at t=7.
  const auto health = run(std::make_unique<fleet::HealthAwareRouter>(
      std::make_unique<fleet::RoundRobinRouter>(), /*alpha=*/0.05,
      /*threshold=*/0.3));

  // Both wrappers steer around the down node, so nothing is lost and the
  // fleet serves the full trace either way.
  EXPECT_EQ(failover.lost, 0U);
  EXPECT_EQ(health.lost, 0U);
  EXPECT_EQ(failover.total.invocations, health.total.invocations);
  ASSERT_EQ(health.per_node.size(), 4U);
  // Failover replays load into node 0 the instant it recovers; the
  // health-aware wrapper sheds it until the EWMA decays.
  EXPECT_LT(health.per_node[0].invocations, failover.per_node[0].invocations);
  EXPECT_GT(health.per_node[0].invocations, 0U)
      << "the EWMA must eventually readmit the node";

  // Deterministic: a second health-aware run is bit-identical.
  const auto again = run(std::make_unique<fleet::HealthAwareRouter>(
      std::make_unique<fleet::RoundRobinRouter>(), 0.05, 0.3));
  EXPECT_EQ(again.per_node[0].invocations, health.per_node[0].invocations);
  EXPECT_DOUBLE_EQ(again.total.total_latency_s, health.total.total_latency_s);
}

TEST(Router, WrapperSpecsComposeNames) {
  auto specs = fleet::standard_routers();
  const auto failover = fleet::with_failover(specs[0]);
  EXPECT_NE(failover.name.find("Failover("), std::string::npos);
  EXPECT_EQ(failover.make()->name(), failover.name);
  const auto health = fleet::with_health_aware(specs[1], 0.05, 0.3);
  EXPECT_NE(health.name.find("Health-Aware("), std::string::npos);
  EXPECT_EQ(health.make()->name(), health.name);
}

TEST(Router, StandardRoutersExposeAllFivePolicies) {
  const auto routers = fleet::standard_routers();
  ASSERT_EQ(routers.size(), 5U);
  std::set<std::string> names;
  for (const auto& r : routers) {
    auto instance = r.make();
    ASSERT_NE(instance, nullptr);
    EXPECT_EQ(instance->name(), r.name);
    names.insert(r.name);
  }
  EXPECT_EQ(names.size(), 5U);
}

}  // namespace
}  // namespace mlcr
