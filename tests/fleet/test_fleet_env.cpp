// FleetEnv: single-node equivalence with the traced runner, fleet-wide
// aggregation accounting, determinism under a fixed seed, and the headline
// property the fleet layer exists for — reuse-aware routing preserves the
// multi-level reuse that random routing destroys.
#include <gtest/gtest.h>

#include "fleet/fleet_env.hpp"
#include "fleet/router.hpp"
#include "fstartbench/workloads.hpp"
#include "policies/runner.hpp"
#include "testing/fixtures.hpp"

namespace mlcr {
namespace {

/// A single-node fleet must reproduce run_episode() on the same trace
/// exactly — same latencies, same cold/warm split, same pool statistics —
/// for every router (routing is trivial with one node).
TEST(FleetEnv, SingleNodeFleetReproducesRunEpisodeExactly) {
  const auto bench = fstartbench::make_benchmark();
  const sim::StartupCostModel cost(bench.catalog,
                                   fstartbench::default_cost_config());
  util::Rng trace_rng(77);
  const sim::Trace trace =
      fstartbench::make_overall_workload(bench, 150, trace_rng);

  // Reference: the traced single-node protocol.
  const auto spec = policies::make_greedy_match_system();
  sim::EnvConfig env_cfg;
  env_cfg.pool_capacity_mb = 1500.0;
  env_cfg.keep_alive_ttl_s = spec.keep_alive_ttl_s;
  sim::ClusterEnv env(bench.functions, bench.catalog, cost, env_cfg,
                      spec.eviction_factory);
  const auto reference = policies::run_episode(env, *spec.scheduler, trace);

  for (const auto& router_spec : fleet::standard_routers()) {
    fleet::FleetConfig cfg;
    cfg.nodes = 1;
    cfg.node_env.pool_capacity_mb = 1500.0;
    fleet::FleetEnv one(bench.functions, bench.catalog, cost, cfg,
                        fleet::uniform_system(policies::make_greedy_match_system));
    const auto router = router_spec.make();
    const fleet::FleetSummary fs = one.run(trace, *router);

    SCOPED_TRACE(router_spec.name);
    EXPECT_EQ(fs.total.invocations, reference.invocations);
    EXPECT_DOUBLE_EQ(fs.total.total_latency_s, reference.total_latency_s);
    EXPECT_DOUBLE_EQ(fs.total.average_latency_s, reference.average_latency_s);
    EXPECT_EQ(fs.total.cold_starts, reference.cold_starts);
    EXPECT_EQ(fs.total.warm_l1, reference.warm_l1);
    EXPECT_EQ(fs.total.warm_l2, reference.warm_l2);
    EXPECT_EQ(fs.total.warm_l3, reference.warm_l3);
    EXPECT_DOUBLE_EQ(fs.total.peak_pool_mb, reference.peak_pool_mb);
    EXPECT_EQ(fs.total.evictions, reference.evictions);
    EXPECT_EQ(fs.total.rejections, reference.rejections);
    // Per-invocation records agree with the single-node metrics stream.
    ASSERT_EQ(fs.merged.invocation_count(), reference.invocations);
    EXPECT_EQ(fs.merged.cumulative_latency(),
              env.metrics().cumulative_latency());
  }
}

TEST(FleetEnv, KeepAliveTtlAppliesPerNode) {
  // The TTL/semantics of the SystemSpec must reach every node's env, same
  // as policies::run_system.
  const testing::TinyWorld world;
  fleet::FleetConfig cfg;
  cfg.nodes = 1;
  cfg.node_env.pool_capacity_mb = 4096.0;
  fleet::FleetEnv one(
      world.functions, world.catalog, world.cost_model(), cfg,
      fleet::uniform_system([] { return policies::make_keepalive_system(5.0); }));
  fleet::RoundRobinRouter router;
  // Two invocations of the same function 60 s apart: with a 5 s TTL the
  // container expires in between, so both must cold-start.
  const sim::Trace trace = testing::TinyWorld::make_trace(
      {testing::TinyWorld::inv(world.fn_py_flask, 0.0, 0.1),
       testing::TinyWorld::inv(world.fn_py_flask, 60.0, 0.1)});
  const auto fs = one.run(trace, router);
  EXPECT_EQ(fs.total.cold_starts, 2U);
}

TEST(FleetEnv, SameSeedSameResultAcrossRuns) {
  const auto bench = fstartbench::make_benchmark();
  const sim::StartupCostModel cost(bench.catalog,
                                   fstartbench::default_cost_config());
  util::Rng trace_rng(11);
  const sim::Trace trace =
      fstartbench::make_overall_workload(bench, 120, trace_rng);

  auto run_once = [&] {
    fleet::FleetConfig cfg;
    cfg.nodes = 4;
    cfg.node_env.pool_capacity_mb = 600.0;
    cfg.seed = 99;
    fleet::FleetEnv env(bench.functions, bench.catalog, cost, cfg,
                        fleet::uniform_system(policies::make_greedy_match_system));
    fleet::RandomRouter router(13);
    return env.run(trace, router);
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_DOUBLE_EQ(a.total.total_latency_s, b.total.total_latency_s);
  EXPECT_EQ(a.total.cold_starts, b.total.cold_starts);
  ASSERT_EQ(a.per_node.size(), b.per_node.size());
  for (std::size_t i = 0; i < a.per_node.size(); ++i) {
    EXPECT_EQ(a.per_node[i].invocations, b.per_node[i].invocations);
    EXPECT_DOUBLE_EQ(a.per_node[i].total_latency_s,
                     b.per_node[i].total_latency_s);
  }
}

TEST(FleetEnv, AggregateSumsPerNodeCounts) {
  const auto bench = fstartbench::make_benchmark();
  const sim::StartupCostModel cost(bench.catalog,
                                   fstartbench::default_cost_config());
  util::Rng trace_rng(21);
  const sim::Trace trace =
      fstartbench::make_overall_workload(bench, 100, trace_rng);

  fleet::FleetConfig cfg;
  cfg.nodes = 3;
  cfg.node_env.pool_capacity_mb = 800.0;
  fleet::FleetEnv env(bench.functions, bench.catalog, cost, cfg,
                      fleet::uniform_system(policies::make_greedy_match_system));
  fleet::RoundRobinRouter router;
  const auto fs = env.run(trace, router);

  EXPECT_EQ(fs.nodes, 3U);
  EXPECT_EQ(fs.router, "Round-Robin");
  EXPECT_EQ(fs.system, "Greedy-Match");
  std::size_t invocations = 0, colds = 0, warm = 0;
  double latency = 0.0;
  for (const auto& node : fs.per_node) {
    invocations += node.invocations;
    colds += node.cold_starts;
    warm += node.warm_l1 + node.warm_l2 + node.warm_l3;
    latency += node.total_latency_s;
  }
  EXPECT_EQ(fs.total.invocations, trace.size());
  EXPECT_EQ(fs.total.invocations, invocations);
  EXPECT_EQ(fs.total.cold_starts, colds);
  EXPECT_EQ(fs.total.warm_l1 + fs.total.warm_l2 + fs.total.warm_l3, warm);
  EXPECT_DOUBLE_EQ(fs.total.total_latency_s, latency);
  EXPECT_EQ(fs.merged.invocation_count(), trace.size());
  // Merged records are in global trace order.
  const auto& records = fs.merged.records();
  for (std::size_t i = 0; i < records.size(); ++i)
    EXPECT_EQ(records[i].seq, i);
  // Round-robin over 3 nodes is perfectly balanced (100 = 34+33+33).
  EXPECT_NEAR(fs.routing_imbalance, 1.0, 0.05);
}

/// The reason this layer exists: on a ≥4-node fleet, reuse-aware routing
/// (warm-aware, package affinity) must beat random routing on total startup
/// latency — random placement scatters invocations away from compatible
/// warm containers.
TEST(FleetEnv, ReuseAwareRoutingBeatsRandomOnFourNodes) {
  const auto bench = fstartbench::make_benchmark();
  const sim::StartupCostModel cost(bench.catalog,
                                   fstartbench::default_cost_config());
  util::Rng trace_rng(31);
  const sim::Trace trace =
      fstartbench::make_overall_workload(bench, 300, trace_rng);

  auto run_router = [&](fleet::Router& router) {
    fleet::FleetConfig cfg;
    cfg.nodes = 4;
    cfg.node_env.pool_capacity_mb = 700.0;
    fleet::FleetEnv env(bench.functions, bench.catalog, cost, cfg,
                        fleet::uniform_system(policies::make_greedy_match_system));
    return env.run(trace, router);
  };

  fleet::RandomRouter random(17);
  fleet::ConsistentHashRouter affinity;
  fleet::WarmAwareRouter warm_aware;
  const double random_latency = run_router(random).total.total_latency_s;
  EXPECT_LT(run_router(warm_aware).total.total_latency_s, random_latency);
  EXPECT_LT(run_router(affinity).total.total_latency_s, random_latency);
}

}  // namespace
}  // namespace mlcr
