// Determinism at fleet scope and in the threaded bench replication loop:
// the same seed must give identical summaries no matter how many worker
// threads execute the replications, and fleet episodes themselves must be
// reproducible when run concurrently.
#include <gtest/gtest.h>

#include "bench/common.hpp"
#include "fleet/fleet_env.hpp"
#include "fleet/router.hpp"
#include "util/thread_pool.hpp"

namespace mlcr {
namespace {

/// run_replications must be bit-identical for --threads 1 vs --threads N,
/// including for stateful schedulers (Random owns an Rng): every rep gets a
/// fresh system and an Rng split in rep order.
TEST(FleetDeterminism, RunReplicationsThreadedMatchesSerial) {
  const benchtools::Suite suite;
  const benchtools::TraceFactory factory = [&](util::Rng& rng) {
    return fstartbench::make_overall_workload(suite.bench, 80, rng);
  };
  const std::vector<benchtools::SystemFactory> systems = {
      [] { return policies::make_greedy_match_system(); },
      [] { return policies::make_random_system(3); },
      [] { return policies::make_keepalive_system(); },
  };
  for (const auto& make_system : systems) {
    const auto serial = benchtools::run_replications(
        suite, make_system, factory, 1200.0, /*reps=*/6, /*threads=*/1);
    const auto threaded = benchtools::run_replications(
        suite, make_system, factory, 1200.0, /*reps=*/6, /*threads=*/4);
    EXPECT_EQ(serial.totals, threaded.totals);
    EXPECT_DOUBLE_EQ(serial.total_latency_s.mean(),
                     threaded.total_latency_s.mean());
    EXPECT_DOUBLE_EQ(serial.cold_starts.mean(), threaded.cold_starts.mean());
    EXPECT_DOUBLE_EQ(serial.peak_pool_mb.mean(),
                     threaded.peak_pool_mb.mean());
    EXPECT_DOUBLE_EQ(serial.evictions.mean(), threaded.evictions.mean());
  }
}

/// Fleet episodes replicated across a thread pool (each rep with its own
/// split Rng, fleet and router) equal the serial loop element-wise.
TEST(FleetDeterminism, FleetReplicationsThreadedMatchSerial) {
  const benchtools::Suite suite;
  constexpr std::size_t kReps = 6;

  auto rep_summaries = [&](std::size_t threads) {
    std::vector<util::Rng> rep_rngs;
    util::Rng root(4242);
    for (std::size_t r = 0; r < kReps; ++r) rep_rngs.push_back(root.split());
    std::vector<fleet::FleetSummary> out(kReps);
    const auto run_one = [&](std::size_t r) {
      util::Rng rng = rep_rngs[r];
      const sim::Trace trace =
          fstartbench::make_overall_workload(suite.bench, 100, rng);
      fleet::FleetConfig cfg;
      cfg.nodes = 4;
      cfg.node_env.pool_capacity_mb = 700.0;
      cfg.seed = 50 + r;
      fleet::FleetEnv env(
          suite.bench.functions, suite.bench.catalog, suite.cost, cfg,
          fleet::uniform_system(policies::make_greedy_match_system));
      fleet::WarmAwareRouter router;
      out[r] = env.run(trace, router);
    };
    if (threads == 1) {
      for (std::size_t r = 0; r < kReps; ++r) run_one(r);
    } else {
      util::ThreadPool pool(threads);
      pool.parallel_for(kReps, run_one);
    }
    return out;
  };

  const auto serial = rep_summaries(1);
  const auto threaded = rep_summaries(3);
  ASSERT_EQ(serial.size(), threaded.size());
  for (std::size_t r = 0; r < kReps; ++r) {
    EXPECT_DOUBLE_EQ(serial[r].total.total_latency_s,
                     threaded[r].total.total_latency_s);
    EXPECT_EQ(serial[r].total.cold_starts, threaded[r].total.cold_starts);
    EXPECT_EQ(serial[r].total.warm_l3, threaded[r].total.warm_l3);
    ASSERT_EQ(serial[r].per_node.size(), threaded[r].per_node.size());
    for (std::size_t i = 0; i < serial[r].per_node.size(); ++i)
      EXPECT_EQ(serial[r].per_node[i].invocations,
                threaded[r].per_node[i].invocations);
  }
}

}  // namespace
}  // namespace mlcr
