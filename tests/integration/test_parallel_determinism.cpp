// The bench replication harness must produce bit-identical statistics for
// any --threads value: every rep owns an Rng split off the trace seed in rep
// order and a fresh system instance, and results are folded in rep order
// after all reps finish. This pins the guarantee end to end through the real
// harness (bench/common.hpp), not just the thread pool.
#include <gtest/gtest.h>

#include "bench/common.hpp"
#include "fstartbench/workloads.hpp"
#include "policies/baselines.hpp"

namespace mlcr {
namespace {

benchtools::TraceFactory overall_factory(const benchtools::Suite& suite,
                                         std::size_t invocations) {
  return [&suite, invocations](util::Rng& rng) {
    return fstartbench::make_overall_workload(suite.bench, invocations, rng);
  };
}

TEST(ParallelDeterminism, ReplicationsAreBitIdenticalAcrossThreadCounts) {
  const benchtools::Suite suite;
  const auto factory = overall_factory(suite, 60);
  const benchtools::SystemFactory lru = [] {
    return policies::make_lru_system();
  };

  const auto serial =
      benchtools::run_replications(suite, lru, factory, 2048.0, 6, 1);
  for (const std::size_t threads : {2U, 4U}) {
    const auto threaded =
        benchtools::run_replications(suite, lru, factory, 2048.0, 6, threads);
    // Exact double equality: the fold happens in rep order regardless of
    // which worker finished first, so there is no tolerance to grant.
    EXPECT_EQ(serial.totals, threaded.totals) << threads << " threads";
  }
}

TEST(ParallelDeterminism, HoldsForStatefulEvictionPolicies) {
  // FaasCache keeps mutable greedy-dual state per system instance; the
  // factory hands every rep its own, so threading must not leak state.
  const benchtools::Suite suite;
  const auto factory = overall_factory(suite, 50);
  const benchtools::SystemFactory faascache = [] {
    return policies::make_faascache_system();
  };

  const auto serial =
      benchtools::run_replications(suite, faascache, factory, 1024.0, 5, 1);
  const auto threaded =
      benchtools::run_replications(suite, faascache, factory, 1024.0, 5, 3);
  EXPECT_EQ(serial.totals, threaded.totals);
}

}  // namespace
}  // namespace mlcr
