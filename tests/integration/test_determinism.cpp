// Whole-pipeline determinism: a (seed, configuration) pair must reproduce
// workloads, training, and evaluation bit-for-bit. This is the guarantee
// every bench table relies on.
#include <gtest/gtest.h>

#include "core/mlcr.hpp"
#include "core/trainer.hpp"
#include "fstartbench/azure_like.hpp"
#include "fstartbench/workloads.hpp"
#include "policies/runner.hpp"
#include "util/thread_pool.hpp"

namespace mlcr {
namespace {

core::MlcrConfig tiny_cfg() {
  core::MlcrConfig cfg = core::make_default_mlcr_config(/*num_slots=*/4,
                                                        /*embed_dim=*/16);
  cfg.dqn.network.ffn_dim = 32;
  cfg.dqn.batch_size = 8;
  cfg.dqn.min_replay = 16;
  return cfg;
}

TEST(Determinism, TrainingProducesIdenticalWeightsGivenSeeds) {
  const auto bench = fstartbench::make_benchmark();
  const sim::StartupCostModel cost(bench.catalog,
                                   fstartbench::default_cost_config());
  util::Rng trace_rng(5);
  const sim::Trace trace = fstartbench::make_overall_workload(bench, 60,
                                                              trace_rng);
  const core::MlcrConfig cfg = tiny_cfg();

  auto train_once = [&] {
    rl::DqnAgent agent(cfg.dqn, util::Rng(7));
    sim::EnvConfig env_cfg;
    env_cfg.pool_capacity_mb = 4096.0;
    sim::ClusterEnv env(bench.functions, bench.catalog, cost, env_cfg, [] {
      return std::make_unique<containers::LruEviction>();
    });
    core::TrainerConfig tc;
    tc.episodes = 4;
    tc.seed = 99;
    const core::StateEncoder encoder(cfg.encoder);
    (void)core::train_agent(agent, encoder, cfg.reward_scale_s, {&env},
                            {&trace}, tc);
    return agent.snapshot_weights();
  };

  const auto a = train_once();
  const auto b = train_once();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_TRUE(a[i] == b[i]) << "weight tensor " << i << " diverged";
}

TEST(Determinism, TrainerReportsAreIdentical) {
  const auto bench = fstartbench::make_benchmark();
  const sim::StartupCostModel cost(bench.catalog,
                                   fstartbench::default_cost_config());
  util::Rng trace_rng(6);
  const sim::Trace trace = fstartbench::make_overall_workload(bench, 50,
                                                              trace_rng);
  const core::MlcrConfig cfg = tiny_cfg();

  auto run = [&] {
    rl::DqnAgent agent(cfg.dqn, util::Rng(3));
    sim::EnvConfig env_cfg;
    env_cfg.pool_capacity_mb = 2048.0;
    sim::ClusterEnv env(bench.functions, bench.catalog, cost, env_cfg, [] {
      return std::make_unique<containers::LruEviction>();
    });
    core::TrainerConfig tc;
    tc.episodes = 3;
    tc.seed = 11;
    const core::StateEncoder encoder(cfg.encoder);
    return core::train_agent(agent, encoder, cfg.reward_scale_s, {&env},
                             {&trace}, tc);
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.episode_total_latency_s, b.episode_total_latency_s);
  EXPECT_EQ(a.train_steps, b.train_steps);
  EXPECT_EQ(a.validation_latency_s, b.validation_latency_s);
  EXPECT_EQ(a.best_validation, b.best_validation);
}

TEST(Determinism, AzureWorldAndEvaluationAreReproducible) {
  fstartbench::AzureLikeConfig cfg;
  cfg.num_functions = 60;
  cfg.window_s = 600.0;
  auto run = [&] {
    const auto w = fstartbench::make_azure_like_workload(cfg, util::Rng(21));
    const sim::StartupCostModel cost(w.catalog);
    return policies::run_system(policies::make_greedy_match_system(),
                                w.functions, w.catalog, cost, 4096.0,
                                w.trace);
  };
  const auto a = run();
  const auto b = run();
  EXPECT_DOUBLE_EQ(a.total_latency_s, b.total_latency_s);
  EXPECT_EQ(a.cold_starts, b.cold_starts);
  EXPECT_EQ(a.evictions, b.evictions);
}

TEST(Determinism, ThreadPoolReplicationsAreOrderIndependent) {
  // Replications run on a pool with split RNGs: results must not depend on
  // scheduling order. Compare a threaded run against a serial run.
  const auto bench = fstartbench::make_benchmark();
  const sim::StartupCostModel cost(bench.catalog,
                                   fstartbench::default_cost_config());

  auto rep_result = [&](std::uint64_t seed) {
    util::Rng rng(seed);
    const sim::Trace trace = fstartbench::make_overall_workload(bench, 80,
                                                                rng);
    return policies::run_system(policies::make_lru_system(), bench.functions,
                                bench.catalog, cost, 4096.0, trace)
        .total_latency_s;
  };

  constexpr std::size_t kReps = 6;
  std::vector<double> serial(kReps), threaded(kReps);
  for (std::size_t i = 0; i < kReps; ++i) serial[i] = rep_result(100 + i);
  util::ThreadPool pool(3);
  pool.parallel_for(kReps,
                    [&](std::size_t i) { threaded[i] = rep_result(100 + i); });
  EXPECT_EQ(serial, threaded);
}

}  // namespace
}  // namespace mlcr
