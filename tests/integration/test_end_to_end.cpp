// Cross-module integration tests: full systems over FStartBench workloads.
#include <gtest/gtest.h>

#include "core/mlcr.hpp"
#include "core/trainer.hpp"
#include "fstartbench/workloads.hpp"
#include "policies/oracle.hpp"
#include "policies/runner.hpp"

namespace mlcr {
namespace {

class EndToEndTest : public ::testing::Test {
 protected:
  fstartbench::Benchmark bench_ = fstartbench::make_benchmark();
  sim::StartupCostModel cost_{bench_.catalog,
                              fstartbench::default_cost_config()};
};

TEST_F(EndToEndTest, AllSystemsProduceConsistentSummaries) {
  util::Rng rng(100);
  const sim::Trace trace = fstartbench::make_overall_workload(bench_, 150, rng);
  const double loose = fstartbench::estimate_loose_capacity_mb(bench_, trace);

  for (const auto& make :
       {policies::make_lru_system, policies::make_faascache_system,
        policies::make_greedy_match_system,
        +[] { return policies::make_keepalive_system(600.0); }}) {
    const auto spec = make();
    const auto s = policies::run_system(spec, bench_.functions, bench_.catalog,
                                        cost_, loose / 2.0, trace);
    EXPECT_EQ(s.invocations, trace.size()) << spec.name;
    EXPECT_EQ(s.cold_starts + s.warm_l1 + s.warm_l2 + s.warm_l3, trace.size())
        << spec.name;
    EXPECT_GT(s.total_latency_s, 0.0) << spec.name;
    EXPECT_NEAR(s.average_latency_s,
                s.total_latency_s / static_cast<double>(s.invocations), 1e-9)
        << spec.name;
    EXPECT_LE(s.peak_pool_mb, loose / 2.0 + 1e-6) << spec.name;
  }
}

TEST_F(EndToEndTest, SameConfigBaselinesNeverUsePartialMatches) {
  util::Rng rng(101);
  const sim::Trace trace = fstartbench::make_overall_workload(bench_, 120, rng);
  for (const auto& make :
       {policies::make_lru_system, policies::make_faascache_system}) {
    const auto spec = make();
    const auto s = policies::run_system(spec, bench_.functions, bench_.catalog,
                                        cost_, 1e9, trace);
    EXPECT_EQ(s.warm_l1, 0U) << spec.name;
    EXPECT_EQ(s.warm_l2, 0U) << spec.name;
  }
}

TEST_F(EndToEndTest, MultiLevelReuseReducesColdStarts) {
  util::Rng rng(102);
  const sim::Trace trace =
      fstartbench::make_similarity_workload(bench_, /*high=*/true, 150, rng);
  const double loose = fstartbench::estimate_loose_capacity_mb(bench_, trace);
  const auto lru =
      policies::run_system(policies::make_lru_system(), bench_.functions,
                           bench_.catalog, cost_, loose / 2.0, trace);
  const auto greedy = policies::run_system(
      policies::make_greedy_match_system(), bench_.functions, bench_.catalog,
      cost_, loose / 2.0, trace);
  EXPECT_LE(greedy.cold_starts, lru.cold_starts)
      << "multi-level matching must not increase cold starts";
  EXPECT_GT(greedy.warm_l1 + greedy.warm_l2, 0U);
}

TEST_F(EndToEndTest, BiggerPoolNeverIncreasesColdStartsForLru) {
  util::Rng rng(103);
  const sim::Trace trace = fstartbench::make_overall_workload(bench_, 150, rng);
  const double loose = fstartbench::estimate_loose_capacity_mb(bench_, trace);
  std::size_t prev_cold = SIZE_MAX;
  for (const double frac : {0.2, 0.5, 1.0}) {
    const auto s =
        policies::run_system(policies::make_lru_system(), bench_.functions,
                             bench_.catalog, cost_, loose * frac, trace);
    EXPECT_LE(s.cold_starts, prev_cold) << "pool fraction " << frac;
    prev_cold = s.cold_starts;
  }
}

TEST_F(EndToEndTest, RunsAreDeterministic) {
  util::Rng rng(104);
  const sim::Trace trace = fstartbench::make_overall_workload(bench_, 100, rng);
  auto run_once = [&] {
    return policies::run_system(policies::make_greedy_match_system(),
                                bench_.functions, bench_.catalog, cost_,
                                4096.0, trace);
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_DOUBLE_EQ(a.total_latency_s, b.total_latency_s);
  EXPECT_EQ(a.cold_starts, b.cold_starts);
  EXPECT_EQ(a.evictions, b.evictions);
}

TEST_F(EndToEndTest, TrainedMlcrIsCompetitiveOnBenchmarkFunctions) {
  // A compact workload where multi-level reuse is required to win: the
  // analytics functions F6/F7/F8 rotate, so no image ever repeats and
  // same-config reuse gets nothing, while their shared Debian+Python stack
  // offers an L2 match every round.
  std::vector<sim::Invocation> invs;
  double t = 0.0;
  const auto f4 = bench_.by_paper_id(4);  // alpine/python/flask (repeats)
  const sim::FunctionTypeId analytics[3] = {
      bench_.by_paper_id(6), bench_.by_paper_id(7), bench_.by_paper_id(8)};
  for (int round = 0; round < 12; ++round) {
    sim::Invocation i1;
    i1.function = f4;
    i1.arrival_s = t;
    i1.exec_s = 0.3;
    invs.push_back(i1);
    sim::Invocation i2;
    i2.function = analytics[round % 3];
    i2.arrival_s = t + 30.0;
    i2.exec_s = 0.5;
    invs.push_back(i2);
    t += 60.0;
  }
  const sim::Trace trace{std::move(invs)};

  // A 450 MB pool fits F4's container plus ONE analytics container, so
  // same-config reuse can never keep all three analytics images warm,
  // while multi-level reuse simply repacks the resident one.
  constexpr double kPoolMb = 450.0;

  core::MlcrConfig cfg = core::make_default_mlcr_config(/*num_slots=*/6,
                                                        /*embed_dim=*/16);
  cfg.dqn.network.ffn_dim = 32;
  cfg.dqn.batch_size = 8;
  cfg.dqn.min_replay = 64;
  auto agent = std::make_shared<rl::DqnAgent>(cfg.dqn, util::Rng(9));
  const core::StateEncoder encoder(cfg.encoder);

  sim::EnvConfig env_cfg;
  env_cfg.pool_capacity_mb = kPoolMb;
  sim::ClusterEnv env(bench_.functions, bench_.catalog, cost_, env_cfg,
                      [] { return std::make_unique<containers::LruEviction>(); });
  core::TrainerConfig tc;
  tc.episodes = 20;
  tc.train_every = 1;
  (void)core::train_agent(*agent, encoder, cfg.reward_scale_s, {&env}, {&trace},
                          tc);

  const auto mlcr = policies::run_system(
      core::make_mlcr_system(agent, cfg.encoder), bench_.functions,
      bench_.catalog, cost_, kPoolMb, trace);
  const auto lru =
      policies::run_system(policies::make_lru_system(), bench_.functions,
                           bench_.catalog, cost_, kPoolMb, trace);
  EXPECT_GT(mlcr.warm_l1 + mlcr.warm_l2, 0U);
  EXPECT_LT(mlcr.total_latency_s, lru.total_latency_s)
      << "multi-level DRL reuse must beat same-config reuse here";
}

TEST_F(EndToEndTest, GreedyMatchesOracleOnEasyInstance) {
  // When every invocation has an obvious best choice, greedy is optimal.
  std::vector<sim::Invocation> invs;
  const auto f4 = bench_.by_paper_id(4);
  for (int i = 0; i < 5; ++i) {
    sim::Invocation inv;
    inv.function = f4;
    inv.arrival_s = i * 50.0;
    inv.exec_s = 0.3;
    invs.push_back(inv);
  }
  const sim::Trace trace{std::move(invs)};

  sim::EnvConfig cfg;
  cfg.pool_capacity_mb = 4096.0;
  const auto oracle = policies::exhaustive_best_plan(
      bench_.functions, bench_.catalog, cost_, cfg,
      [] { return std::make_unique<containers::LruEviction>(); }, trace);
  const auto greedy = policies::run_system(
      policies::make_greedy_match_system(), bench_.functions, bench_.catalog,
      cost_, 4096.0, trace);
  EXPECT_NEAR(greedy.total_latency_s, oracle.total_latency_s, 1e-9);
}

}  // namespace
}  // namespace mlcr
