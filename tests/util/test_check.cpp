#include "util/check.hpp"

#include <gtest/gtest.h>

namespace mlcr::util {
namespace {

TEST(Check, PassingConditionDoesNothing) {
  EXPECT_NO_THROW(MLCR_CHECK(1 + 1 == 2));
  EXPECT_NO_THROW(MLCR_CHECK_MSG(true, "never shown"));
}

TEST(Check, FailureThrowsCheckError) {
  EXPECT_THROW(MLCR_CHECK(false), CheckError);
  EXPECT_THROW(MLCR_CHECK_MSG(false, "boom"), CheckError);
}

TEST(Check, MessageContainsExpressionLocationAndDetail) {
  try {
    MLCR_CHECK_MSG(2 > 3, "detail " << 42);
    FAIL() << "should have thrown";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 > 3"), std::string::npos);
    EXPECT_NE(what.find("test_check.cpp"), std::string::npos);
    EXPECT_NE(what.find("detail 42"), std::string::npos);
  }
}

TEST(Check, IsALogicError) {
  // Callers may catch std::logic_error generically.
  EXPECT_THROW(MLCR_CHECK(false), std::logic_error);
}

TEST(Check, ConditionEvaluatedOnce) {
  int calls = 0;
  auto count = [&] {
    ++calls;
    return true;
  };
  MLCR_CHECK(count());
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace mlcr::util
