#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>

namespace mlcr::util {
namespace {

TEST(ThreadPool, SubmitReturnsResult) {
  ThreadPool pool(2);
  auto fut = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  auto fut = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW((void)fut.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForPropagatesFirstException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(10,
                                 [](std::size_t i) {
                                   if (i == 3)
                                     throw std::runtime_error("task 3");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, ManyTasksComplete) {
  ThreadPool pool(3);
  std::atomic<long> sum{0};
  pool.parallel_for(1'000, [&](std::size_t i) {
    sum.fetch_add(static_cast<long>(i));
  });
  EXPECT_EQ(sum.load(), 999L * 1'000 / 2);
}

TEST(ThreadPool, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.thread_count(), 1U);
}

}  // namespace
}  // namespace mlcr::util
