#include "util/stats.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace mlcr::util {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0U);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(RunningStats, KnownValues) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8U);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  Rng rng(5);
  RunningStats all, a, b;
  for (int i = 0; i < 1'000; ++i) {
    const double v = rng.normal(3.0, 2.0);
    all.add(v);
    (i % 2 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);  // no-op
  EXPECT_EQ(a.count(), 2U);
  b.merge(a);  // adopt
  EXPECT_EQ(b.count(), 2U);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Percentile, MedianAndExtremes) {
  const std::vector<double> v = {5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 5.0);
}

TEST(Percentile, InterpolatesBetweenPoints) {
  const std::vector<double> v = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(v, 25.0), 2.5);
  EXPECT_DOUBLE_EQ(percentile(v, 75.0), 7.5);
}

TEST(Percentile, SingleElement) {
  EXPECT_DOUBLE_EQ(percentile({7.0}, 99.0), 7.0);
}

TEST(Percentile, RejectsBadInput) {
  EXPECT_THROW((void)percentile({}, 50.0), CheckError);
  EXPECT_THROW((void)percentile({1.0}, -1.0), CheckError);
  EXPECT_THROW((void)percentile({1.0}, 101.0), CheckError);
}

TEST(BoxStats, FiveNumberSummary) {
  std::vector<double> v;
  for (int i = 1; i <= 101; ++i) v.push_back(static_cast<double>(i));
  const BoxStats b = box_stats(v);
  EXPECT_DOUBLE_EQ(b.min, 1.0);
  EXPECT_DOUBLE_EQ(b.q1, 26.0);
  EXPECT_DOUBLE_EQ(b.median, 51.0);
  EXPECT_DOUBLE_EQ(b.q3, 76.0);
  EXPECT_DOUBLE_EQ(b.max, 101.0);
  EXPECT_DOUBLE_EQ(b.mean, 51.0);
  EXPECT_EQ(b.count, 101U);
}

TEST(PopulationVariance, KnownValue) {
  EXPECT_DOUBLE_EQ(population_variance({2.0, 4.0, 6.0}), 8.0 / 3.0);
  EXPECT_DOUBLE_EQ(population_variance({}), 0.0);
  EXPECT_DOUBLE_EQ(population_variance({5.0}), 0.0);
}

}  // namespace
}  // namespace mlcr::util
