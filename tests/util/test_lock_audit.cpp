// Runtime lock-order validator tests. The validator methods are always
// compiled, so the core semantics (ascending-only acquisition, legal
// out-of-LIFO release, per-thread isolation) are testable in every build;
// only the LockRankScope instrumentation is gated on MLCR_AUDIT_ENABLED.
#include "util/lock_audit.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>

#include "util/check.hpp"

namespace mlcr::util {
namespace {

// Every test starts and ends with a clean thread-local stack; reset() on
// entry guards against a previous test's thrown CheckError leaving ranks
// registered.
class LockAuditTest : public ::testing::Test {
 protected:
  void SetUp() override { LockOrderValidator::reset(); }
  void TearDown() override { LockOrderValidator::reset(); }
};

TEST_F(LockAuditTest, AscendingAcquisitionIsLegal) {
  LockOrderValidator::acquired(lock_ranks::service_shard(0), "shard 0");
  LockOrderValidator::acquired(lock_ranks::service_shard(3), "shard 3");
  LockOrderValidator::acquired(lock_ranks::kInference, "inference");
  LockOrderValidator::acquired(lock_ranks::index_shard(1), "index 1");
  EXPECT_EQ(LockOrderValidator::held_count(), 4U);
}

TEST_F(LockAuditTest, DescendingAcquisitionThrows) {
  LockOrderValidator::acquired(lock_ranks::kInference, "inference");
  EXPECT_THROW(
      LockOrderValidator::acquired(lock_ranks::service_shard(2), "shard 2"),
      CheckError);
}

TEST_F(LockAuditTest, DoubleAcquisitionThrowsWithADistinctMessage) {
  LockOrderValidator::acquired(lock_ranks::service_shard(5), "shard 5");
  try {
    LockOrderValidator::acquired(lock_ranks::service_shard(5), "shard 5");
    FAIL() << "double acquisition must throw";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("acquired twice"), std::string::npos);
  }
}

TEST_F(LockAuditTest, InversionMessageNamesTheDeclaredOrder) {
  LockOrderValidator::acquired(lock_ranks::index_shard(0), "index 0");
  try {
    LockOrderValidator::acquired(lock_ranks::kInference, "inference");
    FAIL() << "inversion must throw";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("declared order"), std::string::npos);
  }
}

TEST_F(LockAuditTest, OutOfLifoReleaseIsLegal) {
  // dispatch_wave's guard vector destroys front-to-back: releases arrive in
  // acquisition order, not reverse order.
  LockOrderValidator::acquired(lock_ranks::service_shard(0), "shard 0");
  LockOrderValidator::acquired(lock_ranks::service_shard(1), "shard 1");
  LockOrderValidator::acquired(lock_ranks::service_shard(2), "shard 2");
  LockOrderValidator::released(lock_ranks::service_shard(0));
  LockOrderValidator::released(lock_ranks::service_shard(1));
  EXPECT_EQ(LockOrderValidator::held_count(), 1U);
  // With shard 2 still held, a lower rank is still an inversion.
  EXPECT_THROW(
      LockOrderValidator::acquired(lock_ranks::service_shard(1), "shard 1"),
      CheckError);
  LockOrderValidator::released(lock_ranks::service_shard(2));
  EXPECT_EQ(LockOrderValidator::held_count(), 0U);
}

TEST_F(LockAuditTest, ReleasingAnUnheldRankIsIgnored) {
  LockOrderValidator::released(lock_ranks::kInference);
  EXPECT_EQ(LockOrderValidator::held_count(), 0U);
  LockOrderValidator::acquired(lock_ranks::service_shard(7), "shard 7");
  LockOrderValidator::released(lock_ranks::kInference);
  EXPECT_EQ(LockOrderValidator::held_count(), 1U);
}

TEST_F(LockAuditTest, ReacquisitionAfterReleaseIsLegal) {
  LockOrderValidator::acquired(lock_ranks::kInference, "inference");
  LockOrderValidator::released(lock_ranks::kInference);
  LockOrderValidator::acquired(lock_ranks::service_shard(0), "shard 0");
  LockOrderValidator::acquired(lock_ranks::kInference, "inference");
  EXPECT_EQ(LockOrderValidator::held_count(), 2U);
}

TEST_F(LockAuditTest, HeldStacksAreThreadLocal) {
  LockOrderValidator::acquired(lock_ranks::index_shard(4), "index 4");
  // Another thread starts empty: acquiring a rank far below what this
  // thread holds is legal there.
  std::thread other([] {
    EXPECT_EQ(LockOrderValidator::held_count(), 0U);
    LockOrderValidator::acquired(lock_ranks::service_shard(0), "shard 0");
    EXPECT_EQ(LockOrderValidator::held_count(), 1U);
    LockOrderValidator::released(lock_ranks::service_shard(0));
  });
  other.join();
  EXPECT_EQ(LockOrderValidator::held_count(), 1U);
}

TEST_F(LockAuditTest, RankBandsKeepTheThreeFamiliesDisjoint) {
  // A service fleet would need a million shards to collide with the
  // inference rank; treat the bands as the contract.
  EXPECT_LT(lock_ranks::service_shard(999'999), lock_ranks::kInference);
  EXPECT_LT(lock_ranks::kInference, lock_ranks::index_shard(0));
  EXPECT_LT(lock_ranks::index_shard(0), lock_ranks::index_shard(1));
}

TEST_F(LockAuditTest, LockRankScopeMatchesTheBuildMode) {
  {
    const LockRankScope scope(lock_ranks::kInference, "inference");
#if MLCR_AUDIT_ENABLED
    EXPECT_EQ(LockOrderValidator::held_count(), 1U);
#else
    EXPECT_EQ(LockOrderValidator::held_count(), 0U);
#endif
  }
  // Whether the scope was live or compiled away, nothing leaks past it.
  EXPECT_EQ(LockOrderValidator::held_count(), 0U);
}

TEST_F(LockAuditTest, MovedFromScopeDoesNotDoubleRelease) {
  LockRankScope outer(lock_ranks::service_shard(0), "shard 0");
  {
    const LockRankScope inner(std::move(outer));
#if MLCR_AUDIT_ENABLED
    EXPECT_EQ(LockOrderValidator::held_count(), 1U);
#endif
  }
  // inner released the rank; outer's destructor must not release again
  // (visible as held_count going "negative" via erase of a fresh rank).
  EXPECT_EQ(LockOrderValidator::held_count(), 0U);
  LockOrderValidator::acquired(lock_ranks::service_shard(0), "shard 0");
  EXPECT_EQ(LockOrderValidator::held_count(), 1U);
}

}  // namespace
}  // namespace mlcr::util
