#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/check.hpp"

namespace mlcr::util {
namespace {

TEST(Table, RendersHeadersAndRows) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1.50"});
  t.add_row({"beta", "22.00"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22.00"), std::string::npos);
  EXPECT_EQ(t.rows(), 2U);
}

TEST(Table, RejectsWrongArity) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), CheckError);
}

TEST(Table, NumFormatsPrecision) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(3.14159, 0), "3");
  EXPECT_EQ(Table::num(static_cast<std::size_t>(42)), "42");
}

TEST(Csv, WritesHeaderAndEscapes) {
  std::ostringstream os;
  CsvWriter csv(os, {"a", "b"});
  csv.add_row({"plain", "has,comma"});
  csv.add_row({"has\"quote", "x"});
  const std::string s = os.str();
  EXPECT_NE(s.find("a,b\n"), std::string::npos);
  EXPECT_NE(s.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(s.find("\"has\"\"quote\""), std::string::npos);
}

TEST(Csv, RejectsWrongArity) {
  std::ostringstream os;
  CsvWriter csv(os, {"a"});
  EXPECT_THROW(csv.add_row({"x", "y"}), CheckError);
}

}  // namespace
}  // namespace mlcr::util
