#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/check.hpp"

namespace mlcr::util {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1'000; ++i) {
    const double u = rng.uniform(-3.0, 5.5);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.5);
  }
}

TEST(Rng, UniformIndexCoversAllValues) {
  Rng rng(3);
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 5'000; ++i) ++counts[rng.uniform_index(5)];
  for (int c : counts) EXPECT_GT(c, 800);  // ~1000 each
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2'000; ++i) {
    const auto v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(5);
  double sum = 0.0;
  constexpr int kN = 50'000;
  for (int i = 0; i < kN; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / kN, 0.5, 0.02);
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng rng(5);
  double sum = 0.0, sq = 0.0;
  constexpr int kN = 50'000;
  for (int i = 0; i < kN; ++i) {
    const double z = rng.normal();
    sum += z;
    sq += z * z;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.02);
  EXPECT_NEAR(sq / kN, 1.0, 0.03);
}

TEST(Rng, PoissonMeanMatchesLambda) {
  Rng rng(17);
  for (const double lambda : {0.5, 4.0, 100.0}) {
    double sum = 0.0;
    constexpr int kN = 20'000;
    for (int i = 0; i < kN; ++i)
      sum += static_cast<double>(rng.poisson(lambda));
    EXPECT_NEAR(sum / kN, lambda, lambda * 0.05 + 0.02) << "lambda=" << lambda;
  }
}

TEST(Rng, PoissonZeroLambdaIsZero) {
  Rng rng(1);
  EXPECT_EQ(rng.poisson(0.0), 0U);
  EXPECT_EQ(rng.poisson(-1.0), 0U);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, WeightedIndexFollowsWeights) {
  Rng rng(23);
  std::vector<double> w = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 8'000; ++i) ++counts[rng.weighted_index(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.4);
}

TEST(Rng, WeightedIndexRejectsBadInput) {
  Rng rng(1);
  EXPECT_THROW((void)rng.weighted_index({}), CheckError);
  EXPECT_THROW((void)rng.weighted_index({0.0, 0.0}), CheckError);
  EXPECT_THROW((void)rng.weighted_index({1.0, -1.0}), CheckError);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(4);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  auto copy = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, copy);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(42);
  Rng child = a.split();
  Rng b(42);
  (void)b();  // advance past the split draw
  // The child must differ from the parent's continued stream.
  int equal = 0;
  for (int i = 0; i < 50; ++i)
    if (child() == b()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Zipf, ProbabilitiesSumToOneAndDecrease) {
  const ZipfSampler zipf(100, 1.1);
  double sum = 0.0;
  double prev = 1.0;
  for (std::size_t k = 0; k < zipf.size(); ++k) {
    const double p = zipf.probability(k);
    EXPECT_LE(p, prev + 1e-12);
    prev = p;
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Zipf, SamplingMatchesHeadProbability) {
  const ZipfSampler zipf(50, 1.5);
  Rng rng(2);
  int rank0 = 0;
  constexpr int kN = 20'000;
  for (int i = 0; i < kN; ++i)
    if (zipf.sample(rng) == 0) ++rank0;
  EXPECT_NEAR(static_cast<double>(rank0) / kN, zipf.probability(0), 0.02);
}

TEST(Zipf, SingleElement) {
  const ZipfSampler zipf(1, 1.0);
  Rng rng(2);
  EXPECT_EQ(zipf.sample(rng), 0U);
  EXPECT_DOUBLE_EQ(zipf.probability(0), 1.0);
}

}  // namespace
}  // namespace mlcr::util
