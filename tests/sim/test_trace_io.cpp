#include "sim/trace_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "testing/fixtures.hpp"
#include "util/check.hpp"

namespace mlcr::sim {
namespace {

using mlcr::testing::TinyWorld;

TEST(TraceIo, RoundTripPreservesInvocations) {
  TinyWorld world;
  const Trace original =
      TinyWorld::make_trace({TinyWorld::inv(world.fn_py_flask, 0.5, 0.25),
                             TinyWorld::inv(world.fn_js, 1.75, 0.125)});
  std::stringstream buffer;
  write_trace_csv(original, buffer);
  const Trace loaded = read_trace_csv(buffer, world.functions);
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_EQ(loaded.at(i).function, original.at(i).function);
    EXPECT_DOUBLE_EQ(loaded.at(i).arrival_s, original.at(i).arrival_s);
    EXPECT_DOUBLE_EQ(loaded.at(i).exec_s, original.at(i).exec_s);
  }
}

TEST(TraceIo, ReaderSortsByArrival) {
  TinyWorld world;
  std::stringstream buffer(
      "function_id,arrival_s,exec_s\n0,5.0,0.5\n1,1.0,0.5\n");
  const Trace t = read_trace_csv(buffer, world.functions);
  EXPECT_EQ(t.at(0).function, 1U);
  EXPECT_EQ(t.at(1).function, 0U);
}

TEST(TraceIo, RejectsMissingHeader) {
  TinyWorld world;
  std::stringstream buffer("0,1.0,0.5\n");
  EXPECT_THROW((void)read_trace_csv(buffer, world.functions),
               util::CheckError);
}

TEST(TraceIo, RejectsUnknownFunctionId) {
  TinyWorld world;
  std::stringstream buffer("function_id,arrival_s,exec_s\n99,1.0,0.5\n");
  EXPECT_THROW((void)read_trace_csv(buffer, world.functions),
               util::CheckError);
}

TEST(TraceIo, RejectsMalformedRows) {
  TinyWorld world;
  {
    std::stringstream buffer("function_id,arrival_s,exec_s\n0,1.0\n");
    EXPECT_THROW((void)read_trace_csv(buffer, world.functions),
                 util::CheckError);
  }
  {
    std::stringstream buffer("function_id,arrival_s,exec_s\n0,abc,0.5\n");
    EXPECT_THROW((void)read_trace_csv(buffer, world.functions),
                 util::CheckError);
  }
}

TEST(TraceIo, RejectsExtraColumns) {
  TinyWorld world;
  std::stringstream buffer(
      "function_id,arrival_s,exec_s\n0,1.0,0.5,surprise\n");
  EXPECT_THROW((void)read_trace_csv(buffer, world.functions),
               util::CheckError);
}

TEST(TraceIo, RejectsNonFiniteNumbers) {
  TinyWorld world;
  for (const char* bad : {"nan", "inf", "-inf", "NAN", "Infinity"}) {
    {
      std::stringstream buffer(std::string("function_id,arrival_s,exec_s\n0,") +
                               bad + ",0.5\n");
      EXPECT_THROW((void)read_trace_csv(buffer, world.functions),
                   util::CheckError)
          << "arrival " << bad;
    }
    {
      std::stringstream buffer(
          std::string("function_id,arrival_s,exec_s\n0,1.0,") + bad + "\n");
      EXPECT_THROW((void)read_trace_csv(buffer, world.functions),
                   util::CheckError)
          << "exec " << bad;
    }
  }
}

TEST(TraceIo, RejectsNegativeTimes) {
  TinyWorld world;
  {
    std::stringstream buffer("function_id,arrival_s,exec_s\n0,-1.0,0.5\n");
    EXPECT_THROW((void)read_trace_csv(buffer, world.functions),
                 util::CheckError);
  }
  {
    std::stringstream buffer("function_id,arrival_s,exec_s\n0,1.0,-0.5\n");
    EXPECT_THROW((void)read_trace_csv(buffer, world.functions),
                 util::CheckError);
  }
  // Zero arrival is a legal boundary (zero exec is not: the Trace
  // constructor requires strictly positive execution times).
  std::stringstream ok("function_id,arrival_s,exec_s\n0,0.0,0.5\n");
  const Trace t = read_trace_csv(ok, world.functions);
  ASSERT_EQ(t.size(), 1U);
  EXPECT_DOUBLE_EQ(t.at(0).arrival_s, 0.0);
  EXPECT_DOUBLE_EQ(t.at(0).exec_s, 0.5);
}

TEST(TraceIo, SkipsBlankLinesAndHandlesEmptyTrace) {
  TinyWorld world;
  std::stringstream buffer("function_id,arrival_s,exec_s\n\n\n");
  const Trace t = read_trace_csv(buffer, world.functions);
  EXPECT_TRUE(t.empty());
}

TEST(TraceIo, FileRoundTrip) {
  TinyWorld world;
  const Trace original = TinyWorld::make_trace(
      {TinyWorld::inv(world.fn_py_numpy, 2.5, 0.75)});
  const std::string path = ::testing::TempDir() + "/mlcr_trace.csv";
  write_trace_csv(original, path);
  const Trace loaded = read_trace_csv(path, world.functions);
  ASSERT_EQ(loaded.size(), 1U);
  EXPECT_EQ(loaded.at(0).function, world.fn_py_numpy);
}

}  // namespace
}  // namespace mlcr::sim
