#include "sim/invocation.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace mlcr::sim {
namespace {

Invocation inv(FunctionTypeId fn, double at, double exec = 0.5) {
  Invocation i;
  i.function = fn;
  i.arrival_s = at;
  i.exec_s = exec;
  return i;
}

TEST(Trace, SortsByArrivalAndAssignsSeq) {
  const Trace t({inv(0, 5.0), inv(1, 1.0), inv(2, 3.0)});
  ASSERT_EQ(t.size(), 3U);
  EXPECT_EQ(t.at(0).function, 1U);
  EXPECT_EQ(t.at(1).function, 2U);
  EXPECT_EQ(t.at(2).function, 0U);
  for (std::size_t i = 0; i < t.size(); ++i) EXPECT_EQ(t.at(i).seq, i);
}

TEST(Trace, StableSortPreservesTiedOrder) {
  const Trace t({inv(7, 1.0), inv(8, 1.0), inv(9, 1.0)});
  EXPECT_EQ(t.at(0).function, 7U);
  EXPECT_EQ(t.at(1).function, 8U);
  EXPECT_EQ(t.at(2).function, 9U);
}

TEST(Trace, SpanIsLastMinusFirst) {
  const Trace t({inv(0, 2.0), inv(0, 10.5)});
  EXPECT_DOUBLE_EQ(t.span_s(), 8.5);
  EXPECT_DOUBLE_EQ(Trace({inv(0, 3.0)}).span_s(), 0.0);
  EXPECT_DOUBLE_EQ(Trace().span_s(), 0.0);
}

TEST(Trace, RejectsInvalidEntries) {
  EXPECT_THROW(Trace({inv(0, -1.0)}), util::CheckError);
  EXPECT_THROW(Trace({inv(0, 1.0, 0.0)}), util::CheckError);
}

TEST(Trace, AtRejectsOutOfRange) {
  const Trace t({inv(0, 0.0)});
  EXPECT_THROW((void)t.at(1), util::CheckError);
}

}  // namespace
}  // namespace mlcr::sim
