// Corruption tests for the debug invariant auditors (util/audit.hpp): each
// test breaks one private invariant through a test-only friend peer and
// expects the matching audit() to throw util::CheckError. Healthy-state
// tests pin that the auditors are quiet on real episodes — the same calls
// that run after every event in audit-enabled builds.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "containers/pool.hpp"
#include "core/state_encoder.hpp"
#include "fstartbench/workloads.hpp"
#include "sim/env.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace mlcr::containers {

/// Test-only corruption hook: pokes WarmPool private state so the audit's
/// cross-checks can be violated one at a time.
struct PoolTestPeer {
  static double& used_mb(WarmPool& p) { return p.used_mb_; }
  static double& peak_used_mb(WarmPool& p) { return p.peak_used_mb_; }
  static std::size_t& max_count(WarmPool& p) { return p.max_count_; }
  static std::map<ContainerId, Container>& by_id(WarmPool& p) {
    return p.by_id_;
  }
};

}  // namespace mlcr::containers

namespace mlcr::sim {

/// Test-only corruption hook for MetricsCollector aggregates.
struct MetricsTestPeer {
  static double& total_latency_s(MetricsCollector& m) {
    return m.total_latency_s_;
  }
  static std::size_t& cold_starts(MetricsCollector& m) {
    return m.cold_starts_;
  }
  static std::vector<InvocationRecord>& records(MetricsCollector& m) {
    return m.records_;
  }
};

/// Test-only corruption hook for ClusterEnv cross-structure state.
struct EnvTestPeer {
  static containers::WarmPool& pool(ClusterEnv& e) { return *e.pool_; }
  static MetricsCollector& metrics(ClusterEnv& e) { return e.metrics_; }
  static containers::ContainerId& next_container_id(ClusterEnv& e) {
    return e.next_container_id_;
  }
  /// Push `c` onto the busy heap, as if it were executing on a worker.
  static void push_busy(ClusterEnv& e, containers::Container c, double time) {
    ClusterEnv::Completion comp;
    comp.time = time;
    comp.container = std::move(c);
    e.busy_.push(std::move(comp));
  }
};

}  // namespace mlcr::sim

namespace mlcr {
namespace {

containers::Container idle_container(containers::ContainerId id,
                                     double memory_mb, double idle_at) {
  containers::Container c;
  c.id = id;
  c.state = containers::ContainerState::kIdle;
  c.last_idle_at = idle_at;
  c.memory_mb = memory_mb;
  return c;
}

containers::WarmPool small_pool() {
  containers::WarmPool pool(1000.0,
                            std::make_unique<containers::LruEviction>());
  (void)pool.admit(idle_container(1, 100.0, 0.0), 0.0);
  (void)pool.admit(idle_container(2, 250.0, 1.0), 1.0);
  (void)pool.admit(idle_container(3, 50.0, 2.0), 2.0);
  return pool;
}

TEST(PoolAudit, QuietOnHealthyPool) {
  const containers::WarmPool pool = small_pool();
  EXPECT_NO_THROW(pool.audit());
}

TEST(PoolAudit, CatchesByteAccountingDrift) {
  containers::WarmPool pool = small_pool();
  containers::PoolTestPeer::used_mb(pool) += 64.0;
  EXPECT_THROW(pool.audit(), util::CheckError);
}

TEST(PoolAudit, CatchesBusyContainerInPool) {
  containers::WarmPool pool = small_pool();
  containers::PoolTestPeer::by_id(pool).at(2).state =
      containers::ContainerState::kBusy;
  EXPECT_THROW(pool.audit(), util::CheckError);
}

TEST(PoolAudit, CatchesKeyIdMismatch) {
  containers::WarmPool pool = small_pool();
  auto& by_id = containers::PoolTestPeer::by_id(pool);
  // Re-file container 3 under the wrong key; sizes still sum correctly, so
  // only the key==id invariant is violated.
  containers::Container c = by_id.at(3);
  by_id.erase(3);
  by_id.emplace(99, std::move(c));
  EXPECT_THROW(pool.audit(), util::CheckError);
}

TEST(PoolAudit, CatchesCountCapViolation) {
  containers::WarmPool pool = small_pool();
  containers::PoolTestPeer::max_count(pool) = 1;  // pool holds 3
  EXPECT_THROW(pool.audit(), util::CheckError);
}

TEST(PoolAudit, CatchesPeakBelowCurrentUse) {
  containers::WarmPool pool = small_pool();
  containers::PoolTestPeer::peak_used_mb(pool) = 1.0;
  EXPECT_THROW(pool.audit(), util::CheckError);
}

/// Runs a short all-cold episode so the env ends with a populated pool and
/// non-trivial metrics.
struct EpisodeFixture {
  fstartbench::Benchmark bench = fstartbench::make_benchmark();
  sim::StartupCostModel cost{bench.catalog,
                             fstartbench::default_cost_config()};
  sim::Trace trace;
  sim::ClusterEnv env;

  EpisodeFixture()
      : env(bench.functions, bench.catalog, cost, sim::EnvConfig{},
            [] { return std::make_unique<containers::LruEviction>(); }) {
    util::Rng rng(17);
    trace = fstartbench::make_overall_workload(bench, 40, rng);
  }

  void run_episode() {
    env.reset(trace);
    while (!env.done()) (void)env.step(sim::Action::cold());
  }
};

TEST(EnvAudit, QuietAfterFullEpisode) {
  EpisodeFixture f;
  f.run_episode();
  ASSERT_GT(f.env.pool().size(), 0U);
  EXPECT_NO_THROW(f.env.audit());
}

TEST(EnvAudit, CatchesCorruptedPoolAccounting) {
  EpisodeFixture f;
  f.run_episode();
  containers::PoolTestPeer::used_mb(sim::EnvTestPeer::pool(f.env)) += 32.0;
  EXPECT_THROW(f.env.audit(), util::CheckError);
}

TEST(EnvAudit, CatchesContainerBothBusyAndPooled) {
  EpisodeFixture f;
  f.run_episode();
  const containers::WarmPool& pool = f.env.pool();
  ASSERT_GT(pool.size(), 0U);
  const containers::ContainerId pooled_id = pool.idle_containers().front()->id;
  containers::Container twin = *pool.find(pooled_id);
  twin.state = containers::ContainerState::kBusy;
  sim::EnvTestPeer::push_busy(f.env, std::move(twin), f.env.now() + 1.0);
  EXPECT_THROW(f.env.audit(), util::CheckError);
}

TEST(EnvAudit, CatchesStaleIdCounter) {
  EpisodeFixture f;
  f.run_episode();
  ASSERT_GT(f.env.pool().size(), 0U);
  // Every pooled id must be below the allocator's next id; rewinding the
  // counter makes ids look like they came from the future.
  sim::EnvTestPeer::next_container_id(f.env) = 0;
  EXPECT_THROW(f.env.audit(), util::CheckError);
}

TEST(EnvAudit, CatchesMetricsDesync) {
  EpisodeFixture f;
  f.run_episode();
  sim::MetricsTestPeer::records(sim::EnvTestPeer::metrics(f.env)).pop_back();
  EXPECT_THROW(f.env.audit(), util::CheckError);
}

TEST(MetricsAudit, QuietAfterEpisode) {
  EpisodeFixture f;
  f.run_episode();
  EXPECT_NO_THROW(f.env.metrics().audit());
}

TEST(MetricsAudit, CatchesLatencyDrift) {
  EpisodeFixture f;
  f.run_episode();
  sim::MetricsCollector& m = sim::EnvTestPeer::metrics(f.env);
  sim::MetricsTestPeer::total_latency_s(m) += 0.5;
  EXPECT_THROW(m.audit(), util::CheckError);
}

TEST(MetricsAudit, CatchesColdCountDrift) {
  EpisodeFixture f;
  f.run_episode();
  sim::MetricsCollector& m = sim::EnvTestPeer::metrics(f.env);
  sim::MetricsTestPeer::cold_starts(m) += 1;
  EXPECT_THROW(m.audit(), util::CheckError);
}

TEST(MetricsAudit, CatchesOutOfOrderRecords) {
  EpisodeFixture f;
  f.run_episode();
  sim::MetricsCollector& m = sim::EnvTestPeer::metrics(f.env);
  auto& records = sim::MetricsTestPeer::records(m);
  ASSERT_GE(records.size(), 2U);
  std::swap(records.front(), records.back());
  EXPECT_THROW(m.audit(), util::CheckError);
  // Streaming episodes audit without the ordering contract mid-flight
  // (concurrent producers dispatch out of arrival order)...
  EXPECT_NO_THROW(m.audit(/*require_seq_order=*/false));
  // ...and sorting restores the strict contract at episode end.
  m.sort_records_by_seq();
  EXPECT_NO_THROW(m.audit());
}

TEST(EncoderAudit, QuietOnRealEncodings) {
  EpisodeFixture f;
  core::StateEncoderConfig cfg;
  cfg.num_slots = 8;
  const core::StateEncoder encoder(cfg);
  f.env.reset(f.trace);
  double prev = f.env.current().arrival_s;
  while (!f.env.done()) {
    const sim::Invocation& inv = f.env.current();
    const core::EncodedState state = encoder.encode(f.env, inv, prev);
    EXPECT_NO_THROW(encoder.audit(f.env, inv, state));
    prev = inv.arrival_s;
    (void)f.env.step(sim::Action::cold());
  }
}

TEST(EncoderAudit, CatchesMaskedColdStart) {
  EpisodeFixture f;
  const core::StateEncoder encoder{core::StateEncoderConfig{}};
  f.env.reset(f.trace);
  const sim::Invocation& inv = f.env.current();
  core::EncodedState state = encoder.encode(f.env, inv, inv.arrival_s);
  state.mask.back() = 0;  // cold start must always be allowed (Sec. IV-C)
  EXPECT_THROW(encoder.audit(f.env, inv, state), util::CheckError);
}

TEST(EncoderAudit, CatchesEnabledActionForAbsentContainer) {
  EpisodeFixture f;
  core::StateEncoderConfig cfg;
  cfg.num_slots = 8;
  const core::StateEncoder encoder(cfg);
  f.env.reset(f.trace);
  // First invocation of an episode: the pool is empty, so every slot action
  // must be masked off. Enabling one exposes an unexecutable action.
  const sim::Invocation& inv = f.env.current();
  core::EncodedState state = encoder.encode(f.env, inv, inv.arrival_s);
  ASSERT_EQ(state.slot_ids[0], containers::kInvalidContainer);
  state.mask[0] = 1;
  EXPECT_THROW(encoder.audit(f.env, inv, state), util::CheckError);
}

}  // namespace
}  // namespace mlcr
