// Property sweeps over the cluster environment: randomized policies on
// randomized workloads must preserve the simulator's core invariants.
#include <gtest/gtest.h>

#include <set>

#include "containers/matching.hpp"
#include "fstartbench/workloads.hpp"
#include "policies/runner.hpp"
#include "testing/fixtures.hpp"
#include "util/rng.hpp"

namespace mlcr::sim {
namespace {

using mlcr::testing::TinyWorld;

class EnvPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EnvPropertyTest, InvariantsHoldUnderRandomPolicy) {
  TinyWorld world;
  util::Rng rng(GetParam());

  // Random workload over all four TinyWorld types.
  std::vector<Invocation> invs;
  double t = 0.0;
  const sim::FunctionTypeId types[] = {world.fn_py_flask, world.fn_py_numpy,
                                       world.fn_js, world.fn_other_os};
  for (int i = 0; i < 120; ++i) {
    t += rng.exponential(0.2);
    Invocation inv;
    inv.function = types[rng.uniform_index(4)];
    inv.arrival_s = t;
    inv.exec_s = rng.uniform(0.1, 2.0);
    invs.push_back(inv);
  }
  const Trace trace{std::move(invs)};

  const double capacity = rng.uniform(300.0, 2000.0);
  auto env = world.make_env(capacity);
  env.reset(trace);

  std::set<containers::ContainerId> seen_ids;
  while (!env.done()) {
    // Random action: cold, a random idle container (may be no-match), or a
    // bogus id — all must be handled.
    Action action = Action::cold();
    const auto idle = env.pool().idle_containers();
    const double coin = rng.uniform();
    if (coin < 0.4 && !idle.empty())
      action = Action::reuse(idle[rng.uniform_index(idle.size())]->id);
    else if (coin < 0.5)
      action = Action::reuse(999'999);  // unknown container

    const Invocation inv = env.current();
    const StepResult r = env.step(action);

    // Latency is exactly the breakdown total and matches the cost model.
    EXPECT_NEAR(r.latency_s, r.breakdown.total(), 1e-12);
    const auto& fn = world.functions.get(inv.function);
    if (r.cold) {
      EXPECT_EQ(r.match, containers::MatchLevel::kNoMatch);
      EXPECT_NEAR(r.latency_s, world.cost_model().cold_start(fn).total(),
                  1e-9);
      EXPECT_TRUE(seen_ids.insert(r.container).second)
          << "cold starts must create fresh container ids";
    } else {
      EXPECT_TRUE(containers::reusable(r.match));
      EXPECT_NEAR(r.latency_s,
                  world.cost_model().warm_start(fn, r.match).total(), 1e-9);
      EXPECT_TRUE(seen_ids.count(r.container))
          << "warm starts must reuse an existing container";
    }

    // Pool accounting invariants at every step.
    EXPECT_LE(env.pool().used_mb(), capacity + 1e-9);
    EXPECT_GE(env.pool().free_mb(), -1e-9);
    EXPECT_LE(env.pool().used_mb(), env.pool().peak_used_mb() + 1e-9);
  }

  // Terminal accounting.
  const auto& m = env.metrics();
  EXPECT_EQ(m.invocation_count(), trace.size());
  const std::size_t warm = m.warm_starts_at(containers::MatchLevel::kL1) +
                           m.warm_starts_at(containers::MatchLevel::kL2) +
                           m.warm_starts_at(containers::MatchLevel::kL3);
  EXPECT_EQ(m.cold_start_count() + warm, trace.size());
  EXPECT_EQ(env.busy_count(), 0U) << "episode must drain all executions";
  const auto cum = m.cumulative_latency();
  EXPECT_NEAR(cum.back(), m.total_latency_s(), 1e-9);
}

TEST_P(EnvPropertyTest, RepackNeverChangesOsLevel) {
  TinyWorld world;
  util::Rng rng(GetParam() ^ 0xABCD);
  std::vector<Invocation> invs;
  double t = 0.0;
  const sim::FunctionTypeId types[] = {world.fn_py_flask, world.fn_py_numpy,
                                       world.fn_js};
  for (int i = 0; i < 60; ++i) {
    t += rng.exponential(0.1);
    Invocation inv;
    inv.function = types[rng.uniform_index(3)];
    inv.arrival_s = t;
    inv.exec_s = 0.2;
    invs.push_back(inv);
  }
  const Trace trace{std::move(invs)};

  auto env = world.make_env();
  env.reset(trace);
  while (!env.done()) {
    const auto idle = env.pool().idle_containers();
    Action action = Action::cold();
    if (!idle.empty() && rng.bernoulli(0.7))
      action = Action::reuse(idle[rng.uniform_index(idle.size())]->id);
    const StepResult r = env.step(action);
    if (!r.cold) {
      // Reused container (now busy) kept its OS: observable on return.
      // All TinyWorld types here share os_a, so every pooled container
      // must report os_a forever.
      for (const auto* c : env.pool().idle_containers())
        EXPECT_EQ(c->image.level(containers::Level::kOs),
                  std::vector<containers::PackageId>{world.os_a});
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EnvPropertyTest,
                         ::testing::Values(1, 7, 42, 1234, 98765));

class FStartBenchPropertyTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FStartBenchPropertyTest, SchedulersAgreeOnAccounting) {
  // All built-in systems, one random FStartBench workload per seed: summary
  // counts must always reconcile, regardless of scheduler/eviction combo.
  const auto bench = fstartbench::make_benchmark();
  const StartupCostModel cost(bench.catalog,
                              fstartbench::default_cost_config());
  util::Rng rng(GetParam());
  const Trace trace = fstartbench::make_overall_workload(bench, 120, rng);
  const double pool = rng.uniform(1000.0, 8000.0);
  for (const auto& make :
       {policies::make_lru_system, policies::make_faascache_system,
        policies::make_greedy_match_system,
        +[] { return policies::make_keepalive_system(120.0); },
        +[] { return policies::make_random_system(3); }}) {
    const auto spec = make();
    const auto s = policies::run_system(spec, bench.functions, bench.catalog,
                                        cost, pool, trace);
    EXPECT_EQ(s.invocations, trace.size()) << spec.name;
    EXPECT_EQ(s.cold_starts + s.warm_l1 + s.warm_l2 + s.warm_l3, trace.size())
        << spec.name;
    EXPECT_GE(s.cold_starts, 1U) << spec.name;  // first start is always cold
    EXPECT_LE(s.peak_pool_mb, pool + 1e-6) << spec.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FStartBenchPropertyTest,
                         ::testing::Values(10, 20, 30, 40));

}  // namespace
}  // namespace mlcr::sim
