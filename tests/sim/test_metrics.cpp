#include "sim/metrics.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "util/check.hpp"

namespace mlcr::sim {
namespace {

InvocationRecord rec(std::uint64_t seq, double latency, bool cold,
                     containers::MatchLevel match) {
  InvocationRecord r;
  r.seq = seq;
  r.latency_s = latency;
  r.cold = cold;
  r.match = match;
  return r;
}

TEST(Metrics, EmptyCollector) {
  const MetricsCollector m;
  EXPECT_EQ(m.invocation_count(), 0U);
  EXPECT_DOUBLE_EQ(m.total_latency_s(), 0.0);
  EXPECT_DOUBLE_EQ(m.average_latency_s(), 0.0);
  EXPECT_TRUE(m.latencies().empty());
  EXPECT_TRUE(m.cumulative_latency().empty());
}

TEST(Metrics, AggregatesTotalsAndCategories) {
  MetricsCollector m;
  m.record(rec(0, 5.0, true, containers::MatchLevel::kNoMatch));
  m.record(rec(1, 1.0, false, containers::MatchLevel::kL2));
  m.record(rec(2, 0.5, false, containers::MatchLevel::kL3));
  m.record(rec(3, 0.5, false, containers::MatchLevel::kL3));
  EXPECT_EQ(m.invocation_count(), 4U);
  EXPECT_DOUBLE_EQ(m.total_latency_s(), 7.0);
  EXPECT_DOUBLE_EQ(m.average_latency_s(), 1.75);
  EXPECT_EQ(m.cold_start_count(), 1U);
  EXPECT_EQ(m.warm_starts_at(containers::MatchLevel::kL1), 0U);
  EXPECT_EQ(m.warm_starts_at(containers::MatchLevel::kL2), 1U);
  EXPECT_EQ(m.warm_starts_at(containers::MatchLevel::kL3), 2U);
}

TEST(Metrics, CumulativeSeriesAreMonotone) {
  MetricsCollector m;
  m.record(rec(0, 2.0, true, containers::MatchLevel::kNoMatch));
  m.record(rec(1, 1.0, false, containers::MatchLevel::kL3));
  m.record(rec(2, 3.0, true, containers::MatchLevel::kNoMatch));
  const auto lat = m.cumulative_latency();
  const auto cold = m.cumulative_cold_starts();
  ASSERT_EQ(lat.size(), 3U);
  EXPECT_DOUBLE_EQ(lat[0], 2.0);
  EXPECT_DOUBLE_EQ(lat[1], 3.0);
  EXPECT_DOUBLE_EQ(lat[2], 6.0);
  EXPECT_EQ(cold[0], 1U);
  EXPECT_EQ(cold[1], 1U);
  EXPECT_EQ(cold[2], 2U);
}

TEST(Metrics, ClearResetsEverything) {
  MetricsCollector m;
  m.record(rec(0, 2.0, true, containers::MatchLevel::kNoMatch));
  m.clear();
  EXPECT_EQ(m.invocation_count(), 0U);
  EXPECT_EQ(m.cold_start_count(), 0U);
  EXPECT_EQ(m.warm_starts_at(containers::MatchLevel::kL3), 0U);
  EXPECT_DOUBLE_EQ(m.total_latency_s(), 0.0);
}

TEST(Metrics, LatenciesPreserveArrivalOrder) {
  MetricsCollector m;
  m.record(rec(0, 3.0, true, containers::MatchLevel::kNoMatch));
  m.record(rec(1, 1.0, false, containers::MatchLevel::kL3));
  EXPECT_EQ(m.latencies(), (std::vector<double>{3.0, 1.0}));
}

TEST(Metrics, LatencyPercentilesUseExactRanks) {
  MetricsCollector m;
  // 1..100, recorded out of order; nearest-rank percentiles are exact.
  for (int i = 0; i < 100; ++i) {
    const double latency = static_cast<double>((i * 37) % 100 + 1);
    m.record(rec(i, latency, false, containers::MatchLevel::kL3));
  }
  EXPECT_DOUBLE_EQ(m.latency_p50(), 50.0);
  EXPECT_DOUBLE_EQ(m.latency_p95(), 95.0);
  EXPECT_DOUBLE_EQ(m.latency_p99(), 99.0);
  EXPECT_DOUBLE_EQ(m.latency_percentile(100.0), 100.0);
  EXPECT_DOUBLE_EQ(m.latency_percentile(0.0), 1.0);
}

TEST(Metrics, LatencyPercentileOnEmptyAndSingleRecord) {
  MetricsCollector m;
  EXPECT_DOUBLE_EQ(m.latency_p99(), 0.0);
  m.record(rec(0, 4.5, true, containers::MatchLevel::kNoMatch));
  EXPECT_DOUBLE_EQ(m.latency_p50(), 4.5);
  EXPECT_DOUBLE_EQ(m.latency_p99(), 4.5);
}

TEST(Metrics, FailedRecordsLeaveEveryBucketAndDriveGoodput) {
  MetricsCollector m;
  EXPECT_DOUBLE_EQ(m.goodput(), 1.0);  // nothing recorded, nothing lost
  m.record(rec(0, 5.0, true, containers::MatchLevel::kNoMatch));
  InvocationRecord failed = rec(1, 9.0, true, containers::MatchLevel::kNoMatch);
  failed.failed = true;
  failed.attempts = 3;
  m.record(std::move(failed));
  EXPECT_EQ(m.invocation_count(), 2U);
  EXPECT_EQ(m.failed_count(), 1U);
  EXPECT_EQ(m.retry_count(), 2U);
  EXPECT_EQ(m.cold_start_count(), 1U);  // the failed record is not a start
  EXPECT_EQ(m.latencies(), (std::vector<double>{5.0}));
  EXPECT_DOUBLE_EQ(m.goodput(), 0.5);
  // Time spent on failed attempts stays in the latency totals: it was spent.
  EXPECT_DOUBLE_EQ(m.total_latency_s(), 14.0);
}

TEST(Metrics, MarkFailedRetroactivelyReclassifiesARecord) {
  MetricsCollector m;
  m.record(rec(0, 2.0, true, containers::MatchLevel::kNoMatch));
  m.record(rec(1, 1.0, false, containers::MatchLevel::kL3));
  m.mark_failed(1);
  EXPECT_EQ(m.failed_count(), 1U);
  EXPECT_EQ(m.warm_starts_at(containers::MatchLevel::kL3), 0U);
  EXPECT_EQ(m.latencies(), (std::vector<double>{2.0}));
  m.mark_failed(1);  // idempotent
  EXPECT_EQ(m.failed_count(), 1U);
  EXPECT_THROW(m.mark_failed(7), util::CheckError);  // unknown seq
}

TEST(Metrics, PercentilesAreZeroWhenNoInvocationWasServed) {
  // Regression: on an empty or all-failed episode the percentile accessors
  // must return 0.0 by contract, never index an empty sample set.
  MetricsCollector empty;
  EXPECT_DOUBLE_EQ(empty.latency_p50(), 0.0);
  EXPECT_DOUBLE_EQ(empty.latency_p99(), 0.0);
  EXPECT_DOUBLE_EQ(empty.latency_percentile(100.0), 0.0);

  MetricsCollector all_failed;
  for (int i = 0; i < 4; ++i) {
    InvocationRecord r = rec(i, 3.0, true, containers::MatchLevel::kNoMatch);
    r.failed = true;
    all_failed.record(std::move(r));
  }
  EXPECT_TRUE(all_failed.latencies().empty());
  EXPECT_DOUBLE_EQ(all_failed.latency_p50(), 0.0);
  EXPECT_DOUBLE_EQ(all_failed.latency_p99(), 0.0);
  EXPECT_DOUBLE_EQ(all_failed.goodput(), 0.0);
}

TEST(Metrics, MergeCarriesFailedAndRetryCounts) {
  MetricsCollector a;
  MetricsCollector b;
  InvocationRecord f = rec(0, 1.0, true, containers::MatchLevel::kNoMatch);
  f.failed = true;
  f.attempts = 2;
  a.record(std::move(f));
  b.record(rec(1, 1.0, false, containers::MatchLevel::kL3));
  MetricsCollector merged;
  merged.merge(a);
  merged.merge(b);
  EXPECT_EQ(merged.failed_count(), 1U);
  EXPECT_EQ(merged.retry_count(), 1U);
  EXPECT_DOUBLE_EQ(merged.goodput(), 0.5);
  merged.audit();
}

TEST(Metrics, PercentilesWorkOnFleetMergedCollectors) {
  // merge() keeps every per-invocation record, so percentiles over a merged
  // collector equal percentiles over the union of the nodes' samples.
  MetricsCollector a;
  MetricsCollector b;
  MetricsCollector merged;
  for (int i = 0; i < 50; ++i)
    a.record(rec(i, static_cast<double>(i + 1), false,
                 containers::MatchLevel::kL3));
  for (int i = 0; i < 50; ++i)
    b.record(rec(i, static_cast<double>(i + 51), true,
                 containers::MatchLevel::kNoMatch));
  merged.merge(a);
  merged.merge(b);
  ASSERT_EQ(merged.invocation_count(), 100U);
  EXPECT_DOUBLE_EQ(merged.latency_p50(), 50.0);
  EXPECT_DOUBLE_EQ(merged.latency_p95(), 95.0);
  EXPECT_DOUBLE_EQ(merged.latency_p99(), 99.0);
}

TEST(Metrics, LargeFleetMergePreservesExactRankPercentiles) {
  // Regression for the serving-scale aggregation path: folding many
  // per-node collectors through merge_many must leave percentiles equal to
  // the nearest-rank value over the union of every node's raw latencies —
  // no re-bucketing, no drift from the merge order.
  constexpr std::size_t kNodes = 64;
  constexpr std::size_t kPerNode = 37;
  std::vector<MetricsCollector> nodes(kNodes);
  std::vector<const MetricsCollector*> parts;
  std::vector<double> all;
  std::uint64_t seq = 0;
  for (std::size_t n = 0; n < kNodes; ++n) {
    for (std::size_t i = 0; i < kPerNode; ++i) {
      // A deterministic scramble spanning several orders of magnitude.
      const double latency =
          0.001 * static_cast<double>((seq * 2654435761ULL) % 100000 + 1);
      nodes[n].record(rec(seq++, latency, false,
                          containers::MatchLevel::kL3));
      all.push_back(latency);
    }
    parts.push_back(&nodes[n]);
  }

  MetricsCollector merged;
  merged.merge_many(parts);
  ASSERT_EQ(merged.invocation_count(), kNodes * kPerNode);

  std::vector<double> sorted = all;
  std::sort(sorted.begin(), sorted.end());
  for (const double p : {0.0, 25.0, 50.0, 90.0, 95.0, 99.0, 99.9, 100.0}) {
    // Nearest-rank reference: the smallest value whose rank >= ceil(p% * n).
    const double n = static_cast<double>(sorted.size());
    std::size_t rank =
        static_cast<std::size_t>(std::ceil(p / 100.0 * n));
    if (rank < 1) rank = 1;
    if (rank > sorted.size()) rank = sorted.size();
    EXPECT_DOUBLE_EQ(merged.latency_percentile(p), sorted[rank - 1])
        << "p=" << p;
  }
}

}  // namespace
}  // namespace mlcr::sim
