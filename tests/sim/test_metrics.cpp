#include "sim/metrics.hpp"

#include <gtest/gtest.h>

namespace mlcr::sim {
namespace {

InvocationRecord rec(std::uint64_t seq, double latency, bool cold,
                     containers::MatchLevel match) {
  InvocationRecord r;
  r.seq = seq;
  r.latency_s = latency;
  r.cold = cold;
  r.match = match;
  return r;
}

TEST(Metrics, EmptyCollector) {
  const MetricsCollector m;
  EXPECT_EQ(m.invocation_count(), 0U);
  EXPECT_DOUBLE_EQ(m.total_latency_s(), 0.0);
  EXPECT_DOUBLE_EQ(m.average_latency_s(), 0.0);
  EXPECT_TRUE(m.latencies().empty());
  EXPECT_TRUE(m.cumulative_latency().empty());
}

TEST(Metrics, AggregatesTotalsAndCategories) {
  MetricsCollector m;
  m.record(rec(0, 5.0, true, containers::MatchLevel::kNoMatch));
  m.record(rec(1, 1.0, false, containers::MatchLevel::kL2));
  m.record(rec(2, 0.5, false, containers::MatchLevel::kL3));
  m.record(rec(3, 0.5, false, containers::MatchLevel::kL3));
  EXPECT_EQ(m.invocation_count(), 4U);
  EXPECT_DOUBLE_EQ(m.total_latency_s(), 7.0);
  EXPECT_DOUBLE_EQ(m.average_latency_s(), 1.75);
  EXPECT_EQ(m.cold_start_count(), 1U);
  EXPECT_EQ(m.warm_starts_at(containers::MatchLevel::kL1), 0U);
  EXPECT_EQ(m.warm_starts_at(containers::MatchLevel::kL2), 1U);
  EXPECT_EQ(m.warm_starts_at(containers::MatchLevel::kL3), 2U);
}

TEST(Metrics, CumulativeSeriesAreMonotone) {
  MetricsCollector m;
  m.record(rec(0, 2.0, true, containers::MatchLevel::kNoMatch));
  m.record(rec(1, 1.0, false, containers::MatchLevel::kL3));
  m.record(rec(2, 3.0, true, containers::MatchLevel::kNoMatch));
  const auto lat = m.cumulative_latency();
  const auto cold = m.cumulative_cold_starts();
  ASSERT_EQ(lat.size(), 3U);
  EXPECT_DOUBLE_EQ(lat[0], 2.0);
  EXPECT_DOUBLE_EQ(lat[1], 3.0);
  EXPECT_DOUBLE_EQ(lat[2], 6.0);
  EXPECT_EQ(cold[0], 1U);
  EXPECT_EQ(cold[1], 1U);
  EXPECT_EQ(cold[2], 2U);
}

TEST(Metrics, ClearResetsEverything) {
  MetricsCollector m;
  m.record(rec(0, 2.0, true, containers::MatchLevel::kNoMatch));
  m.clear();
  EXPECT_EQ(m.invocation_count(), 0U);
  EXPECT_EQ(m.cold_start_count(), 0U);
  EXPECT_EQ(m.warm_starts_at(containers::MatchLevel::kL3), 0U);
  EXPECT_DOUBLE_EQ(m.total_latency_s(), 0.0);
}

TEST(Metrics, LatenciesPreserveArrivalOrder) {
  MetricsCollector m;
  m.record(rec(0, 3.0, true, containers::MatchLevel::kNoMatch));
  m.record(rec(1, 1.0, false, containers::MatchLevel::kL3));
  EXPECT_EQ(m.latencies(), (std::vector<double>{3.0, 1.0}));
}

TEST(Metrics, LatencyPercentilesUseExactRanks) {
  MetricsCollector m;
  // 1..100, recorded out of order; nearest-rank percentiles are exact.
  for (int i = 0; i < 100; ++i) {
    const double latency = static_cast<double>((i * 37) % 100 + 1);
    m.record(rec(i, latency, false, containers::MatchLevel::kL3));
  }
  EXPECT_DOUBLE_EQ(m.latency_p50(), 50.0);
  EXPECT_DOUBLE_EQ(m.latency_p95(), 95.0);
  EXPECT_DOUBLE_EQ(m.latency_p99(), 99.0);
  EXPECT_DOUBLE_EQ(m.latency_percentile(100.0), 100.0);
  EXPECT_DOUBLE_EQ(m.latency_percentile(0.0), 1.0);
}

TEST(Metrics, LatencyPercentileOnEmptyAndSingleRecord) {
  MetricsCollector m;
  EXPECT_DOUBLE_EQ(m.latency_p99(), 0.0);
  m.record(rec(0, 4.5, true, containers::MatchLevel::kNoMatch));
  EXPECT_DOUBLE_EQ(m.latency_p50(), 4.5);
  EXPECT_DOUBLE_EQ(m.latency_p99(), 4.5);
}

TEST(Metrics, PercentilesWorkOnFleetMergedCollectors) {
  // merge() keeps every per-invocation record, so percentiles over a merged
  // collector equal percentiles over the union of the nodes' samples.
  MetricsCollector a;
  MetricsCollector b;
  MetricsCollector merged;
  for (int i = 0; i < 50; ++i)
    a.record(rec(i, static_cast<double>(i + 1), false,
                 containers::MatchLevel::kL3));
  for (int i = 0; i < 50; ++i)
    b.record(rec(i, static_cast<double>(i + 51), true,
                 containers::MatchLevel::kNoMatch));
  merged.merge(a);
  merged.merge(b);
  ASSERT_EQ(merged.invocation_count(), 100U);
  EXPECT_DOUBLE_EQ(merged.latency_p50(), 50.0);
  EXPECT_DOUBLE_EQ(merged.latency_p95(), 95.0);
  EXPECT_DOUBLE_EQ(merged.latency_p99(), 99.0);
}

}  // namespace
}  // namespace mlcr::sim
