#include "sim/env.hpp"

#include <gtest/gtest.h>

#include "containers/matching.hpp"
#include "testing/fixtures.hpp"
#include "util/check.hpp"

namespace mlcr::sim {
namespace {

using containers::MatchLevel;
using mlcr::testing::TinyWorld;

class EnvTest : public ::testing::Test {
 protected:
  TinyWorld world_;
};

TEST_F(EnvTest, ColdStartCreatesContainerAndRecordsBreakdown) {
  auto env = world_.make_env();
  const Trace trace = TinyWorld::make_trace(
      {TinyWorld::inv(world_.fn_py_flask, 0.0)});
  env.reset(trace);
  ASSERT_FALSE(env.done());
  const StepResult r = env.step(Action::cold());
  EXPECT_TRUE(r.cold);
  EXPECT_EQ(r.match, MatchLevel::kNoMatch);
  const auto& fn = world_.functions.get(world_.fn_py_flask);
  EXPECT_DOUBLE_EQ(r.latency_s, world_.cost_model().cold_start(fn).total());
  EXPECT_TRUE(env.done());
  EXPECT_EQ(env.metrics().cold_start_count(), 1U);
}

TEST_F(EnvTest, ContainerReturnsToPoolAfterExecution) {
  auto env = world_.make_env();
  // Second arrival is after the first completes.
  const Trace trace =
      TinyWorld::make_trace({TinyWorld::inv(world_.fn_py_flask, 0.0, 0.5),
                             TinyWorld::inv(world_.fn_py_flask, 100.0)});
  env.reset(trace);
  (void)env.step(Action::cold());
  ASSERT_FALSE(env.done());
  EXPECT_EQ(env.pool().size(), 1U);  // warm container parked
  const auto idle = env.pool().idle_containers();
  ASSERT_EQ(idle.size(), 1U);
  const StepResult r = env.step(Action::reuse(idle[0]->id));
  EXPECT_FALSE(r.cold);
  EXPECT_EQ(r.match, MatchLevel::kL3);
  EXPECT_EQ(env.metrics().warm_starts_at(MatchLevel::kL3), 1U);
}

TEST_F(EnvTest, ReuseOfUnknownContainerDegradesToCold) {
  auto env = world_.make_env();
  const Trace trace = TinyWorld::make_trace(
      {TinyWorld::inv(world_.fn_py_flask, 0.0)});
  env.reset(trace);
  const StepResult r = env.step(Action::reuse(12345));
  EXPECT_TRUE(r.cold);
}

TEST_F(EnvTest, ReuseOfNoMatchContainerDegradesToCold) {
  auto env = world_.make_env();
  const Trace trace =
      TinyWorld::make_trace({TinyWorld::inv(world_.fn_py_flask, 0.0, 0.5),
                             TinyWorld::inv(world_.fn_other_os, 100.0)});
  env.reset(trace);
  (void)env.step(Action::cold());
  const auto idle = env.pool().idle_containers();
  ASSERT_EQ(idle.size(), 1U);
  const StepResult r = env.step(Action::reuse(idle[0]->id));
  EXPECT_TRUE(r.cold);
  // The no-match container must still be in the pool, untouched.
  EXPECT_NE(env.pool().find(idle[0]->id), nullptr);
}

TEST_F(EnvTest, BusyContainerIsNotReusable) {
  auto env = world_.make_env();
  // Second invocation arrives while the first is still executing.
  const Trace trace =
      TinyWorld::make_trace({TinyWorld::inv(world_.fn_py_flask, 0.0, 1000.0),
                             TinyWorld::inv(world_.fn_py_flask, 1.0)});
  env.reset(trace);
  const StepResult first = env.step(Action::cold());
  EXPECT_EQ(env.busy_count(), 1U);
  // Busy containers are not in the pool, so the reuse degrades to cold.
  const StepResult second = env.step(Action::reuse(first.container));
  EXPECT_TRUE(second.cold);
  EXPECT_NE(second.container, first.container);
}

TEST_F(EnvTest, MultiLevelReuseRepacksContainer) {
  auto env = world_.make_env();
  const Trace trace =
      TinyWorld::make_trace({TinyWorld::inv(world_.fn_py_flask, 0.0, 0.5),
                             TinyWorld::inv(world_.fn_py_numpy, 100.0, 0.5),
                             TinyWorld::inv(world_.fn_py_flask, 200.0)});
  env.reset(trace);
  (void)env.step(Action::cold());
  auto idle = env.pool().idle_containers();
  ASSERT_EQ(idle.size(), 1U);
  const containers::ContainerId id = idle[0]->id;

  // L2 reuse: the container is repacked to the numpy image.
  const StepResult r2 = env.step(Action::reuse(id));
  EXPECT_EQ(r2.match, MatchLevel::kL2);
  EXPECT_EQ(r2.container, id) << "repacked container keeps its identity";

  // After it returns, it now full-matches fn_py_numpy, not fn_py_flask.
  EXPECT_EQ(env.match_for(id, world_.fn_py_numpy), MatchLevel::kL3);
  EXPECT_EQ(env.match_for(id, world_.fn_py_flask), MatchLevel::kL2);
}

TEST_F(EnvTest, MatchForUnknownContainerIsNoMatch) {
  auto env = world_.make_env();
  const Trace trace = TinyWorld::make_trace(
      {TinyWorld::inv(world_.fn_py_flask, 0.0)});
  env.reset(trace);
  EXPECT_EQ(env.match_for(777, world_.fn_py_flask), MatchLevel::kNoMatch);
}

TEST_F(EnvTest, KeepAliveTtlExpiresIdleContainers) {
  auto env = world_.make_env(4096.0, /*ttl=*/10.0);
  const Trace trace =
      TinyWorld::make_trace({TinyWorld::inv(world_.fn_py_flask, 0.0, 0.5),
                             TinyWorld::inv(world_.fn_py_flask, 1000.0)});
  env.reset(trace);
  (void)env.step(Action::cold());
  // By the time the second invocation arrives the container expired.
  EXPECT_EQ(env.pool().size(), 0U);
  EXPECT_EQ(env.pool().eviction_count(), 1U);
}

TEST_F(EnvTest, MetricsTotalsAreConsistent) {
  auto env = world_.make_env();
  const Trace trace =
      TinyWorld::make_trace({TinyWorld::inv(world_.fn_py_flask, 0.0, 0.5),
                             TinyWorld::inv(world_.fn_py_flask, 50.0, 0.5),
                             TinyWorld::inv(world_.fn_js, 100.0, 0.5)});
  env.reset(trace);
  while (!env.done()) {
    const auto idle = env.pool().idle_containers();
    const auto& fn_image =
        world_.functions.get(env.current().function).image;
    Action a = Action::cold();
    for (const auto* c : idle)
      if (containers::reusable(containers::match(fn_image, c->image)))
        a = Action::reuse(c->id);
    (void)env.step(a);
  }
  const auto& m = env.metrics();
  EXPECT_EQ(m.invocation_count(), 3U);
  const std::size_t warm = m.warm_starts_at(MatchLevel::kL1) +
                           m.warm_starts_at(MatchLevel::kL2) +
                           m.warm_starts_at(MatchLevel::kL3);
  EXPECT_EQ(m.cold_start_count() + warm, 3U);
  double total = 0.0;
  for (const auto& rec : m.records()) total += rec.latency_s;
  EXPECT_DOUBLE_EQ(total, m.total_latency_s());
  EXPECT_DOUBLE_EQ(m.average_latency_s(), total / 3.0);
}

TEST_F(EnvTest, CumulativeSeriesMatchRecords) {
  auto env = world_.make_env();
  const Trace trace =
      TinyWorld::make_trace({TinyWorld::inv(world_.fn_py_flask, 0.0, 0.5),
                             TinyWorld::inv(world_.fn_js, 1.0, 0.5)});
  env.reset(trace);
  (void)env.step(Action::cold());
  (void)env.step(Action::cold());
  const auto cum = env.metrics().cumulative_latency();
  ASSERT_EQ(cum.size(), 2U);
  EXPECT_GT(cum[1], cum[0]);
  const auto colds = env.metrics().cumulative_cold_starts();
  EXPECT_EQ(colds.back(), 2U);
}

TEST_F(EnvTest, DeterministicAcrossRuns) {
  const Trace trace =
      TinyWorld::make_trace({TinyWorld::inv(world_.fn_py_flask, 0.0, 0.5),
                             TinyWorld::inv(world_.fn_py_numpy, 20.0, 0.4),
                             TinyWorld::inv(world_.fn_py_flask, 40.0, 0.3),
                             TinyWorld::inv(world_.fn_js, 60.0, 0.2)});
  auto run = [&] {
    auto env = world_.make_env();
    env.reset(trace);
    while (!env.done()) {
      const auto idle = env.pool().idle_containers();
      (void)env.step(idle.empty() ? Action::cold()
                                  : Action::reuse(idle[0]->id));
    }
    return env.metrics().total_latency_s();
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

TEST_F(EnvTest, StepAfterDoneThrows) {
  auto env = world_.make_env();
  const Trace trace = TinyWorld::make_trace(
      {TinyWorld::inv(world_.fn_py_flask, 0.0)});
  env.reset(trace);
  (void)env.step(Action::cold());
  EXPECT_THROW((void)env.step(Action::cold()), util::CheckError);
  EXPECT_THROW((void)env.current(), util::CheckError);
}

TEST_F(EnvTest, PoolCapacityForcesEvictions) {
  // Pool fits one container only (~156 MB each with base overhead).
  auto env = world_.make_env(200.0);
  const Trace trace =
      TinyWorld::make_trace({TinyWorld::inv(world_.fn_py_flask, 0.0, 0.5),
                             TinyWorld::inv(world_.fn_js, 1.0, 0.5),
                             TinyWorld::inv(world_.fn_py_flask, 100.0)});
  env.reset(trace);
  (void)env.step(Action::cold());
  (void)env.step(Action::cold());
  (void)env.step(Action::cold());
  EXPECT_GE(env.pool().eviction_count(), 1U);
  EXPECT_LE(env.pool().used_mb(), 200.0);
}

}  // namespace
}  // namespace mlcr::sim
