#include "sim/cost_model.hpp"

#include <gtest/gtest.h>

#include "testing/fixtures.hpp"
#include "util/check.hpp"

namespace mlcr::sim {
namespace {

using containers::MatchLevel;
using mlcr::testing::TinyWorld;

class CostModelTest : public ::testing::Test {
 protected:
  TinyWorld world_;
  StartupCostModel model_ = world_.cost_model();
};

TEST_F(CostModelTest, ColdStartIncludesAllComponents) {
  const auto& fn = world_.functions.get(world_.fn_py_flask);
  const StartupBreakdown b = model_.cold_start(fn);
  EXPECT_GT(b.sandbox_s, 0.0);
  EXPECT_GT(b.pull_s, 0.0);
  EXPECT_GT(b.install_s, 0.0);
  EXPECT_DOUBLE_EQ(b.runtime_init_s, fn.runtime_init_s);
  EXPECT_DOUBLE_EQ(b.function_init_s, fn.function_init_s);
  EXPECT_DOUBLE_EQ(b.cleaner_s, 0.0);
  EXPECT_DOUBLE_EQ(
      b.total(), b.sandbox_s + b.pull_s + b.install_s + b.runtime_init_s +
                     b.function_init_s);
}

TEST_F(CostModelTest, ColdPullMatchesCatalogSizes) {
  const auto& fn = world_.functions.get(world_.fn_py_flask);
  const StartupBreakdown b = model_.cold_start(fn);
  // os-a (80) + python (50) + flask (10) = 140 MB over 3 packages.
  const auto& cfg = model_.config();
  EXPECT_DOUBLE_EQ(b.pull_s,
                   140.0 / cfg.pull_bandwidth_mb_s + 3.0 * cfg.pull_rtt_s);
  EXPECT_DOUBLE_EQ(b.install_s, 0.4 + 1.0 + 0.3);
}

TEST_F(CostModelTest, WarmStartCostDecreasesWithMatchLevel) {
  const auto& fn = world_.functions.get(world_.fn_py_numpy);
  const double cold = model_.cold_start(fn).total();
  const double l1 = model_.warm_start(fn, MatchLevel::kL1).total();
  const double l2 = model_.warm_start(fn, MatchLevel::kL2).total();
  const double l3 = model_.warm_start(fn, MatchLevel::kL3).total();
  EXPECT_GT(cold, l1);
  EXPECT_GT(l1, l2);
  EXPECT_GT(l2, l3);
}

TEST_F(CostModelTest, FullMatchPaysOnlyInitAndCleaner) {
  const auto& fn = world_.functions.get(world_.fn_py_flask);
  const StartupBreakdown b = model_.warm_start(fn, MatchLevel::kL3);
  EXPECT_DOUBLE_EQ(b.sandbox_s, 0.0);
  EXPECT_DOUBLE_EQ(b.pull_s, 0.0);
  EXPECT_DOUBLE_EQ(b.install_s, 0.0);
  EXPECT_DOUBLE_EQ(b.runtime_init_s, 0.0);
  EXPECT_DOUBLE_EQ(b.function_init_s, fn.function_init_s);
  EXPECT_GT(b.cleaner_s, 0.0);
}

TEST_F(CostModelTest, L2ReprovisionsRuntimeOnly) {
  const auto& fn = world_.functions.get(world_.fn_py_numpy);
  const StartupBreakdown b = model_.warm_start(fn, MatchLevel::kL2);
  const auto& cfg = model_.config();
  // numpy: 30 MB, 1 package.
  EXPECT_DOUBLE_EQ(b.pull_s,
                   30.0 / cfg.pull_bandwidth_mb_s + cfg.pull_rtt_s);
  EXPECT_DOUBLE_EQ(b.install_s, 0.5);
  EXPECT_DOUBLE_EQ(b.runtime_init_s, fn.runtime_init_s);
}

TEST_F(CostModelTest, L1ReprovisionsLanguageAndRuntime) {
  const auto& fn = world_.functions.get(world_.fn_py_numpy);
  const StartupBreakdown b = model_.warm_start(fn, MatchLevel::kL1);
  const auto& cfg = model_.config();
  // python (50) + numpy (30) over 2 packages.
  EXPECT_DOUBLE_EQ(b.pull_s,
                   80.0 / cfg.pull_bandwidth_mb_s + 2.0 * cfg.pull_rtt_s);
  EXPECT_DOUBLE_EQ(b.install_s, 1.0 + 0.5);
}

TEST_F(CostModelTest, WarmStartRejectsNoMatch) {
  const auto& fn = world_.functions.get(world_.fn_py_flask);
  EXPECT_THROW((void)model_.warm_start(fn, MatchLevel::kNoMatch),
               util::CheckError);
}

TEST_F(CostModelTest, StartCostDegradesToColdOnNoMatch) {
  const auto& fn = world_.functions.get(world_.fn_py_flask);
  EXPECT_DOUBLE_EQ(model_.start_cost(fn, MatchLevel::kNoMatch).total(),
                   model_.cold_start(fn).total());
  EXPECT_DOUBLE_EQ(model_.start_cost(fn, MatchLevel::kL2).total(),
                   model_.warm_start(fn, MatchLevel::kL2).total());
}

TEST_F(CostModelTest, PullTimeScalesWithSizeAndCount) {
  EXPECT_DOUBLE_EQ(model_.pull_time_s(0.0, 0), 0.0);
  const double one = model_.pull_time_s(30.0, 1);
  const double two = model_.pull_time_s(60.0, 2);
  EXPECT_NEAR(two, 2.0 * one, 1e-12);
}

TEST_F(CostModelTest, ConfigValidation) {
  CostModelConfig bad;
  bad.pull_bandwidth_mb_s = 0.0;
  EXPECT_THROW(StartupCostModel(world_.catalog, bad), util::CheckError);
}

}  // namespace
}  // namespace mlcr::sim
