// Shared test world: a small catalog, a handful of function types and env
// builders, so simulator/policy/core tests stay terse.
#pragma once

#include <memory>

#include "containers/pool.hpp"
#include "sim/env.hpp"

namespace mlcr::testing {

/// A compact universe: two OSes, two languages, three runtimes, and four
/// function types covering every match relationship.
struct TinyWorld {
  containers::PackageCatalog catalog;
  sim::FunctionTable functions;

  containers::PackageId os_a{}, os_b{};
  containers::PackageId lang_py{}, lang_js{};
  containers::PackageId rt_flask{}, rt_numpy{}, rt_express{};

  // fn_py_flask / fn_py_numpy share OS+language (L2 pair);
  // fn_js shares only the OS with them (L1);
  // fn_other_os matches nothing.
  sim::FunctionTypeId fn_py_flask{}, fn_py_numpy{}, fn_js{}, fn_other_os{};

  TinyWorld() {
    using containers::Level;
    os_a = catalog.add("os-a", Level::kOs, 80.0, 0.4);
    os_b = catalog.add("os-b", Level::kOs, 100.0, 0.5);
    lang_py = catalog.add("python", Level::kLanguage, 50.0, 1.0);
    lang_js = catalog.add("node", Level::kLanguage, 60.0, 0.6);
    rt_flask = catalog.add("flask", Level::kRuntime, 10.0, 0.3);
    rt_numpy = catalog.add("numpy", Level::kRuntime, 30.0, 0.5);
    rt_express = catalog.add("express", Level::kRuntime, 5.0, 0.2);

    fn_py_flask = add_fn("py-flask", {os_a}, {lang_py}, {rt_flask}, 0.2, 0.5);
    fn_py_numpy = add_fn("py-numpy", {os_a}, {lang_py}, {rt_numpy}, 0.3, 0.8);
    fn_js = add_fn("js-express", {os_a}, {lang_js}, {rt_express}, 0.15, 0.3);
    fn_other_os = add_fn("other-os", {os_b}, {lang_py}, {rt_flask}, 0.2, 0.5);
  }

  sim::FunctionTypeId add_fn(std::string name,
                             std::vector<containers::PackageId> os,
                             std::vector<containers::PackageId> lang,
                             std::vector<containers::PackageId> rt,
                             double runtime_init_s, double mean_exec_s) {
    sim::FunctionType f;
    f.name = std::move(name);
    f.image = containers::ImageSpec(std::move(os), std::move(lang),
                                    std::move(rt));
    f.runtime_init_s = runtime_init_s;
    f.function_init_s = 0.05;
    f.mean_exec_s = mean_exec_s;
    return functions.add(std::move(f));
  }

  [[nodiscard]] sim::StartupCostModel cost_model() const {
    return sim::StartupCostModel(catalog);
  }

  [[nodiscard]] sim::ClusterEnv make_env(
      double pool_mb = 4096.0,
      std::optional<double> ttl = std::nullopt) const {
    sim::EnvConfig cfg;
    cfg.pool_capacity_mb = pool_mb;
    cfg.keep_alive_ttl_s = ttl;
    return sim::ClusterEnv(
        functions, catalog, cost_model(), cfg,
        [] { return std::make_unique<containers::LruEviction>(); });
  }

  /// Build a trace from (function, arrival, exec) triples.
  [[nodiscard]] static sim::Trace make_trace(
      std::initializer_list<sim::Invocation> invocations) {
    return sim::Trace(std::vector<sim::Invocation>(invocations));
  }

  [[nodiscard]] static sim::Invocation inv(sim::FunctionTypeId fn,
                                           double arrival_s,
                                           double exec_s = 0.5) {
    sim::Invocation i;
    i.function = fn;
    i.arrival_s = arrival_s;
    i.exec_s = exec_s;
    return i;
  }
};

}  // namespace mlcr::testing
