#include "rl/qnetwork.hpp"

#include <gtest/gtest.h>

#include "nn/gradcheck.hpp"
#include "rl/schedule.hpp"
#include "util/check.hpp"

namespace mlcr::rl {
namespace {

QNetworkConfig tiny_config(bool attention = true) {
  QNetworkConfig cfg;
  cfg.feature_dim = 6;
  cfg.num_slots = 4;
  cfg.embed_dim = 8;
  cfg.heads = 2;
  cfg.blocks = 2;
  cfg.ffn_dim = 16;
  cfg.use_attention = attention;
  return cfg;
}

TEST(QNetwork, OutputHasOneQPerAction) {
  util::Rng rng(1);
  QNetwork net(tiny_config(), rng);
  EXPECT_EQ(net.num_actions(), 5U);
  EXPECT_EQ(net.num_tokens(), 6U);
  const nn::Tensor q = net.forward(nn::Tensor(6, 6, 0.1F));
  EXPECT_EQ(q.rows(), 5U);
  EXPECT_EQ(q.cols(), 1U);
}

TEST(QNetwork, RejectsWrongTokenShape) {
  util::Rng rng(1);
  QNetwork net(tiny_config(), rng);
  EXPECT_THROW((void)net.forward(nn::Tensor(5, 6)), util::CheckError);
  EXPECT_THROW((void)net.forward(nn::Tensor(6, 7)), util::CheckError);
}

TEST(QNetwork, GradCheckAttention) {
  util::Rng rng(2);
  QNetwork net(tiny_config(), rng);
  const nn::Tensor x = nn::Tensor::he_uniform(6, 6, rng);
  const nn::Tensor seed = nn::Tensor::he_uniform(5, 1, rng);
  EXPECT_LT(nn::check_input_gradient(net, x, seed).max_rel_error, 5e-2F);
}

TEST(QNetwork, GradCheckMlpAblation) {
  util::Rng rng(3);
  QNetwork net(tiny_config(/*attention=*/false), rng);
  const nn::Tensor x = nn::Tensor::he_uniform(6, 6, rng);
  const nn::Tensor seed = nn::Tensor::he_uniform(5, 1, rng);
  EXPECT_LT(nn::check_input_gradient(net, x, seed).max_rel_error, 5e-2F);
}

TEST(QNetwork, AttentionVariantSeesOtherTokens) {
  util::Rng rng(4);
  QNetwork attn(tiny_config(true), rng);
  util::Rng rng2(4);
  QNetwork mlp(tiny_config(false), rng2);

  nn::Tensor x = nn::Tensor::he_uniform(6, 6, rng);
  const nn::Tensor q_a1 = attn.forward(x);
  const nn::Tensor q_m1 = mlp.forward(x);
  // Perturb the *cluster* token; slot Q-values can only change under
  // attention (the MLP ablation treats tokens independently).
  x(0, 2) += 1.0F;
  const nn::Tensor q_a2 = attn.forward(x);
  const nn::Tensor q_m2 = mlp.forward(x);
  EXPECT_NE(q_a1(0, 0), q_a2(0, 0));
  EXPECT_FLOAT_EQ(q_m1(0, 0), q_m2(0, 0));
}

TEST(MaskedArgmax, PicksBestAllowed) {
  nn::Tensor q(4, 1);
  q(0, 0) = 5.0F;
  q(1, 0) = 9.0F;
  q(2, 0) = 7.0F;
  q(3, 0) = 1.0F;
  EXPECT_EQ(masked_argmax(q, {1, 1, 1, 1}), 1U);
  EXPECT_EQ(masked_argmax(q, {1, 0, 1, 1}), 2U);
  EXPECT_EQ(masked_argmax(q, {0, 0, 0, 1}), 3U);
  EXPECT_EQ(masked_argmax(q, {0, 0, 0, 0}), std::nullopt);
}

TEST(MaskedMax, MatchesArgmax) {
  nn::Tensor q(3, 1);
  q(0, 0) = -1.0F;
  q(1, 0) = 4.0F;
  q(2, 0) = 2.0F;
  EXPECT_FLOAT_EQ(*masked_max(q, {1, 1, 1}), 4.0F);
  EXPECT_FLOAT_EQ(*masked_max(q, {1, 0, 1}), 2.0F);
  EXPECT_EQ(masked_max(q, {0, 0, 0}), std::nullopt);
}

TEST(MaskedArgmax, RejectsWrongMaskSize) {
  nn::Tensor q(3, 1);
  EXPECT_THROW((void)masked_argmax(q, {1, 1}), util::CheckError);
}

TEST(LinearEpsilon, AnnealsLinearlyThenFlat) {
  const LinearEpsilon eps(1.0F, 0.1F, 100);
  EXPECT_FLOAT_EQ(eps.value(0), 1.0F);
  EXPECT_NEAR(eps.value(50), 0.55F, 1e-5F);
  EXPECT_FLOAT_EQ(eps.value(100), 0.1F);
  EXPECT_FLOAT_EQ(eps.value(10'000), 0.1F);
}

TEST(LinearEpsilon, ZeroDecayIsConstantEnd) {
  const LinearEpsilon eps(1.0F, 0.2F, 0);
  EXPECT_FLOAT_EQ(eps.value(0), 0.2F);
}

}  // namespace
}  // namespace mlcr::rl
