#include "rl/dqn.hpp"

#include <gtest/gtest.h>

namespace mlcr::rl {
namespace {

DqnConfig tiny_dqn(std::size_t min_replay = 8) {
  DqnConfig cfg;
  cfg.network.feature_dim = 4;
  cfg.network.num_slots = 2;  // 3 actions
  cfg.network.embed_dim = 8;
  cfg.network.heads = 2;
  cfg.network.blocks = 1;
  cfg.network.ffn_dim = 16;
  cfg.learning_rate = 5e-3F;
  cfg.gamma = 0.0F;  // contextual bandit unless stated otherwise
  cfg.batch_size = 8;
  cfg.min_replay = min_replay;
  cfg.target_sync_every = 10;
  return cfg;
}

// Tokens must be distinguishable: the Q-head reads per-token outputs, and a
// permutation-equivariant network assigns equal Q to identical tokens.
nn::Tensor bandit_state() {
  nn::Tensor s(4, 4);
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t c = 0; c < 4; ++c)
      s(r, c) = 0.2F * static_cast<float>(r) + 0.1F * static_cast<float>(c);
  return s;
}

TEST(DqnAgent, TrainStepGatedOnMinReplay) {
  DqnAgent agent(tiny_dqn(/*min_replay=*/4), util::Rng(1));
  util::Rng rng(2);
  EXPECT_EQ(agent.train_step(rng), std::nullopt);
  for (int i = 0; i < 3; ++i) {
    Transition t;
    t.state = bandit_state();
    t.action = 0;
    t.reward = 0.0F;
    t.terminal = true;
    agent.observe(std::move(t));
    if (i < 2) {
      EXPECT_EQ(agent.train_step(rng), std::nullopt);
    }
  }
  Transition t;
  t.state = bandit_state();
  t.action = 0;
  t.reward = 0.0F;
  t.terminal = true;
  agent.observe(std::move(t));
  EXPECT_TRUE(agent.train_step(rng).has_value());
  EXPECT_EQ(agent.train_steps(), 1U);
}

TEST(DqnAgent, LearnsBanditRewards) {
  // Rewards: action 0 -> -1, action 1 -> +1, action 2 -> 0 (terminal).
  DqnAgent agent(tiny_dqn(), util::Rng(3));
  util::Rng rng(4);
  for (int i = 0; i < 60; ++i) {
    const std::size_t a = i % 3;
    Transition t;
    t.state = bandit_state();
    t.action = a;
    t.reward = a == 0 ? -1.0F : (a == 1 ? 1.0F : 0.0F);
    t.terminal = true;
    agent.observe(std::move(t));
  }
  for (int i = 0; i < 300; ++i) (void)agent.train_step(rng);

  const nn::Tensor q = agent.q_values(bandit_state());
  EXPECT_GT(q(1, 0), q(0, 0));
  EXPECT_GT(q(1, 0), q(2, 0));
  EXPECT_NEAR(q(1, 0), 1.0F, 0.3F);
  EXPECT_NEAR(q(0, 0), -1.0F, 0.3F);
  EXPECT_EQ(agent.greedy_action(bandit_state(), {1, 1, 1}), 1U);
}

TEST(DqnAgent, GreedyRespectsMask) {
  DqnAgent agent(tiny_dqn(), util::Rng(3));
  util::Rng rng(4);
  // Make action 1 clearly the best via bandit training.
  for (int i = 0; i < 60; ++i) {
    Transition t;
    t.state = bandit_state();
    t.action = i % 3;
    t.reward = (i % 3) == 1 ? 1.0F : -1.0F;
    t.terminal = true;
    agent.observe(std::move(t));
  }
  for (int i = 0; i < 200; ++i) (void)agent.train_step(rng);
  EXPECT_EQ(agent.greedy_action(bandit_state(), {1, 1, 1}), 1U);
  // Mask the best action away: the agent must pick among the rest.
  const std::size_t a = agent.greedy_action(bandit_state(), {1, 0, 1});
  EXPECT_NE(a, 1U);
}

TEST(DqnAgent, EpsilonOneExploresUniformlyOverMask) {
  DqnAgent agent(tiny_dqn(), util::Rng(5));
  util::Rng rng(6);
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 600; ++i)
    ++counts[agent.select_action(bandit_state(), {1, 0, 1}, 1.0F, rng)];
  EXPECT_EQ(counts[1], 0) << "masked action must never be explored";
  EXPECT_GT(counts[0], 200);
  EXPECT_GT(counts[2], 200);
}

TEST(DqnAgent, BootstrapsWithGamma) {
  // Two-step chain: in s0 action 0 gives reward 0 and leads to s1 where the
  // only allowed action yields +1. With gamma=0.9, Q(s0, 0) -> 0.9.
  DqnConfig cfg = tiny_dqn();
  cfg.gamma = 0.9F;
  DqnAgent agent(cfg, util::Rng(7));
  util::Rng rng(8);

  nn::Tensor s0(4, 4, 0.1F);
  nn::Tensor s1(4, 4, 0.9F);
  for (int i = 0; i < 40; ++i) {
    Transition t01;
    t01.state = s0;
    t01.action = 0;
    t01.reward = 0.0F;
    t01.next_state = s1;
    t01.next_mask = {0, 1, 0};
    agent.observe(std::move(t01));

    Transition t1;
    t1.state = s1;
    t1.action = 1;
    t1.reward = 1.0F;
    t1.terminal = true;
    agent.observe(std::move(t1));
  }
  for (int i = 0; i < 500; ++i) (void)agent.train_step(rng);
  const nn::Tensor q0 = agent.q_values(s0);
  EXPECT_NEAR(q0(0, 0), 0.9F, 0.3F);
}

TEST(DqnAgent, SaveLoadRoundTrip) {
  DqnAgent a(tiny_dqn(), util::Rng(9));
  DqnAgent b(tiny_dqn(), util::Rng(10));
  const std::string path = ::testing::TempDir() + "/dqn_agent.bin";
  a.save(path);
  b.load(path);
  const nn::Tensor qa = a.q_values(bandit_state());
  const nn::Tensor qb = b.q_values(bandit_state());
  EXPECT_TRUE(qa == qb);
}

TEST(DqnAgent, VanillaDqnAlsoLearns) {
  DqnConfig cfg = tiny_dqn();
  cfg.double_dqn = false;
  DqnAgent agent(cfg, util::Rng(11));
  util::Rng rng(12);
  for (int i = 0; i < 60; ++i) {
    Transition t;
    t.state = bandit_state();
    t.action = i % 3;
    t.reward = (i % 3) == 2 ? 1.0F : 0.0F;
    t.terminal = true;
    agent.observe(std::move(t));
  }
  for (int i = 0; i < 300; ++i) (void)agent.train_step(rng);
  EXPECT_EQ(agent.greedy_action(bandit_state(), {1, 1, 1}), 2U);
}

}  // namespace
}  // namespace mlcr::rl
