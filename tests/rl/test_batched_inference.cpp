// Bit-identity pinning for batched inference: stacking states into one
// forward pass must produce exactly the per-state outputs of the one-at-a-
// time path. Every non-attention layer is strictly row-wise and attention
// is confined per stacked segment, so equality is exact (EXPECT_EQ on
// floats), not approximate — any reassociation of the arithmetic is a bug.
#include <gtest/gtest.h>

#include <vector>

#include "nn/attention.hpp"
#include "rl/dqn.hpp"
#include "rl/qnetwork.hpp"
#include "util/rng.hpp"

namespace mlcr::rl {
namespace {

void expect_tensors_identical(const nn::Tensor& a, const nn::Tensor& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (std::size_t r = 0; r < a.rows(); ++r)
    for (std::size_t c = 0; c < a.cols(); ++c)
      EXPECT_EQ(a(r, c), b(r, c)) << "(" << r << ", " << c << ")";
}

QNetworkConfig tiny_config(bool use_attention) {
  QNetworkConfig cfg;
  cfg.feature_dim = 6;
  cfg.num_slots = 3;
  cfg.embed_dim = 8;
  cfg.heads = 2;
  cfg.blocks = 2;
  cfg.ffn_dim = 16;
  cfg.use_attention = use_attention;
  return cfg;
}

std::vector<nn::Tensor> random_states(const QNetworkConfig& cfg,
                                      std::size_t count, util::Rng& rng) {
  std::vector<nn::Tensor> states;
  const std::size_t tokens = kFirstSlotTokenRow + cfg.num_slots;
  for (std::size_t i = 0; i < count; ++i)
    states.push_back(nn::Tensor::he_uniform(tokens, cfg.feature_dim, rng));
  return states;
}

TEST(BatchedInference, QNetworkForwardBatchMatchesForward) {
  for (const bool use_attention : {true, false}) {
    SCOPED_TRACE(use_attention ? "attention" : "mlp");
    util::Rng rng(7);
    const QNetworkConfig cfg = tiny_config(use_attention);
    QNetwork net(cfg, rng);
    const auto states = random_states(cfg, 5, rng);

    // Single-state path first; forward_batch clobbers the caches.
    std::vector<nn::Tensor> singles;
    for (const nn::Tensor& s : states) singles.push_back(net.forward(s));

    std::vector<const nn::Tensor*> ptrs;
    for (const nn::Tensor& s : states) ptrs.push_back(&s);
    const auto batched = net.forward_batch(ptrs);
    ASSERT_EQ(batched.size(), singles.size());
    for (std::size_t i = 0; i < singles.size(); ++i) {
      SCOPED_TRACE(i);
      expect_tensors_identical(batched[i], singles[i]);
    }
  }
}

TEST(BatchedInference, ForwardBatchOfOneMatchesForward) {
  util::Rng rng(9);
  const QNetworkConfig cfg = tiny_config(true);
  QNetwork net(cfg, rng);
  const auto states = random_states(cfg, 1, rng);
  const nn::Tensor single = net.forward(states[0]);
  const auto batched = net.forward_batch({&states[0]});
  ASSERT_EQ(batched.size(), 1U);
  expect_tensors_identical(batched[0], single);
  EXPECT_TRUE(net.forward_batch({}).empty());
}

TEST(BatchedInference, AttentionForwardBatchedMatchesPerSegment) {
  util::Rng rng(11);
  nn::MultiHeadAttention mha(8, 2, rng);
  constexpr std::size_t kTokens = 5;
  constexpr std::size_t kSegments = 4;
  const nn::Tensor stacked =
      nn::Tensor::he_uniform(kTokens * kSegments, 8, rng);
  const nn::Tensor batched = mha.forward_batched(stacked, kTokens);
  ASSERT_EQ(batched.rows(), stacked.rows());
  for (std::size_t seg = 0; seg < kSegments; ++seg) {
    SCOPED_TRACE(seg);
    nn::Tensor segment = nn::Tensor::zeros(kTokens, 8);
    for (std::size_t r = 0; r < kTokens; ++r)
      for (std::size_t c = 0; c < 8; ++c)
        segment(r, c) = stacked(seg * kTokens + r, c);
    const nn::Tensor single = mha.forward(segment);
    for (std::size_t r = 0; r < kTokens; ++r)
      for (std::size_t c = 0; c < 8; ++c)
        EXPECT_EQ(batched(seg * kTokens + r, c), single(r, c));
  }
}

TEST(BatchedInference, TransformerBlockForwardBatchedMatchesPerSegment) {
  util::Rng rng(13);
  nn::TransformerBlock blk(8, 2, 16, rng);
  constexpr std::size_t kTokens = 4;
  constexpr std::size_t kSegments = 3;
  const nn::Tensor stacked =
      nn::Tensor::he_uniform(kTokens * kSegments, 8, rng);
  const nn::Tensor batched = blk.forward_batched(stacked, kTokens);
  for (std::size_t seg = 0; seg < kSegments; ++seg) {
    SCOPED_TRACE(seg);
    nn::Tensor segment = nn::Tensor::zeros(kTokens, 8);
    for (std::size_t r = 0; r < kTokens; ++r)
      for (std::size_t c = 0; c < 8; ++c)
        segment(r, c) = stacked(seg * kTokens + r, c);
    const nn::Tensor single = blk.forward(segment);
    for (std::size_t r = 0; r < kTokens; ++r)
      for (std::size_t c = 0; c < 8; ++c)
        EXPECT_EQ(batched(seg * kTokens + r, c), single(r, c));
  }
}

TEST(BatchedInference, AgentBatchedApisMatchSingleState) {
  util::Rng rng(17);
  DqnConfig cfg;
  cfg.network = tiny_config(true);
  DqnAgent agent(cfg, util::Rng(21));
  const auto states = random_states(cfg.network, 4, rng);
  std::vector<const nn::Tensor*> ptrs;
  for (const nn::Tensor& s : states) ptrs.push_back(&s);

  // All-allowed masks plus one restricted mask exercise the argmax path.
  std::vector<ActionMask> masks(states.size(),
                                ActionMask(cfg.network.num_slots + 1, 1));
  masks[2].assign(cfg.network.num_slots + 1, 0);
  masks[2][1] = 1;
  masks[2][cfg.network.num_slots] = 1;

  std::vector<nn::Tensor> single_q;
  for (const nn::Tensor& s : states) single_q.push_back(agent.q_values(s));
  const auto batched_q = agent.q_values_batch(ptrs);
  ASSERT_EQ(batched_q.size(), single_q.size());
  for (std::size_t i = 0; i < single_q.size(); ++i) {
    SCOPED_TRACE(i);
    expect_tensors_identical(batched_q[i], single_q[i]);
  }

  std::vector<const ActionMask*> mask_ptrs;
  for (const ActionMask& m : masks) mask_ptrs.push_back(&m);
  const auto actions = agent.greedy_actions(ptrs, mask_ptrs);
  ASSERT_EQ(actions.size(), states.size());
  for (std::size_t i = 0; i < states.size(); ++i) {
    const auto expected = masked_argmax(single_q[i], masks[i]);
    ASSERT_TRUE(expected.has_value());
    EXPECT_EQ(actions[i], *expected) << "state " << i;
  }
}

}  // namespace
}  // namespace mlcr::rl
