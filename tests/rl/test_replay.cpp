#include "rl/replay_buffer.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace mlcr::rl {
namespace {

Transition make_transition(float reward) {
  Transition t;
  t.state = nn::Tensor(1, 1, reward);
  t.reward = reward;
  t.next_state = nn::Tensor(1, 1);
  t.next_mask = {1};
  return t;
}

TEST(ReplayBuffer, GrowsUntilCapacity) {
  ReplayBuffer buf(3);
  EXPECT_TRUE(buf.empty());
  buf.push(make_transition(1.0F));
  buf.push(make_transition(2.0F));
  EXPECT_EQ(buf.size(), 2U);
  buf.push(make_transition(3.0F));
  buf.push(make_transition(4.0F));
  EXPECT_EQ(buf.size(), 3U) << "capacity bound";
}

TEST(ReplayBuffer, RingOverwritesOldest) {
  ReplayBuffer buf(2);
  buf.push(make_transition(1.0F));
  buf.push(make_transition(2.0F));
  buf.push(make_transition(3.0F));  // overwrites reward=1
  util::Rng rng(1);
  bool saw_one = false;
  for (int i = 0; i < 200; ++i)
    for (const Transition* t : buf.sample(2, rng))
      if (t->reward == 1.0F) saw_one = true;
  EXPECT_FALSE(saw_one);
}

TEST(ReplayBuffer, SampleEmptyThrows) {
  ReplayBuffer buf(4);
  util::Rng rng(1);
  EXPECT_THROW((void)buf.sample(1, rng), util::CheckError);
}

TEST(ReplayBuffer, SampleReturnsRequestedCount) {
  ReplayBuffer buf(8);
  buf.push(make_transition(1.0F));
  util::Rng rng(1);
  EXPECT_EQ(buf.sample(5, rng).size(), 5U);  // with replacement
}

TEST(ReplayBuffer, ClearEmpties) {
  ReplayBuffer buf(4);
  buf.push(make_transition(1.0F));
  buf.clear();
  EXPECT_TRUE(buf.empty());
  buf.push(make_transition(2.0F));
  EXPECT_EQ(buf.size(), 1U);
}

TEST(ReplayBuffer, ZeroCapacityRejected) {
  EXPECT_THROW(ReplayBuffer(0), util::CheckError);
}

}  // namespace
}  // namespace mlcr::rl
