// Schema checker: accepts what the sinks emit, rejects malformed JSON and
// contract violations, and reports per-name span/instant/counter tallies.
#include "obs/schema_check.hpp"

#include <gtest/gtest.h>

#include <string>

namespace mlcr::obs {
namespace {

bool any_error_contains(const TraceCheckReport& report,
                        const std::string& needle) {
  for (const std::string& err : report.errors)
    if (err.find(needle) != std::string::npos) return true;
  return false;
}

TEST(SchemaCheck, AcceptsMinimalValidTraces) {
  // Object root with traceEvents, plus the bare-array form.
  const char* kObject = R"({"traceEvents":[
    {"name":"startup","ph":"X","ts":10,"dur":5,"pid":0,"tid":0,"cat":"sim"},
    {"name":"match","ph":"i","ts":10,"pid":0,"tid":0},
    {"name":"pool_used_mb","ph":"C","ts":10,"pid":0,"tid":0,
     "args":{"value":12.5}},
    {"name":"process_name","ph":"M","pid":0,"tid":0,"ts":0,
     "args":{"name":"simulated-cluster"}}
  ],"displayTimeUnit":"ms"})";
  const auto report = check_trace_json(kObject);
  EXPECT_TRUE(report.ok()) << (report.errors.empty() ? "" : report.errors[0]);
  EXPECT_EQ(report.event_count, 4U);
  EXPECT_EQ(report.span_counts.at("startup"), 1U);
  EXPECT_EQ(report.instant_counts.at("match"), 1U);
  EXPECT_EQ(report.counter_counts.at("pool_used_mb"), 1U);

  const char* kArray =
      R"([{"name":"a","ph":"i","ts":0,"pid":1,"tid":2}])";
  EXPECT_TRUE(check_trace_json(kArray).ok());
}

TEST(SchemaCheck, RejectsMalformedJson) {
  EXPECT_FALSE(check_trace_json("").ok());
  EXPECT_FALSE(check_trace_json("{").ok());
  EXPECT_FALSE(check_trace_json("{\"traceEvents\":[}").ok());
  EXPECT_FALSE(check_trace_json("not json at all").ok());
  // Trailing garbage after a valid document.
  EXPECT_FALSE(check_trace_json("[] []").ok());
  // A valid JSON value that is not a trace.
  EXPECT_FALSE(check_trace_json("42").ok());
  EXPECT_FALSE(check_trace_json("{\"events\":[]}").ok());
}

TEST(SchemaCheck, RejectsContractViolations) {
  // Missing name.
  EXPECT_TRUE(any_error_contains(
      check_trace_json(R"([{"ph":"i","ts":0,"pid":0,"tid":0}])"), "name"));
  // Unknown phase.
  EXPECT_TRUE(any_error_contains(
      check_trace_json(
          R"([{"name":"a","ph":"Z","ts":0,"pid":0,"tid":0}])"),
      "ph"));
  // Negative timestamp.
  EXPECT_TRUE(any_error_contains(
      check_trace_json(
          R"([{"name":"a","ph":"i","ts":-1,"pid":0,"tid":0}])"),
      "ts"));
  // Span without duration.
  EXPECT_TRUE(any_error_contains(
      check_trace_json(
          R"([{"name":"a","ph":"X","ts":0,"pid":0,"tid":0}])"),
      "dur"));
  // Counter without numeric args.
  EXPECT_FALSE(check_trace_json(
                   R"([{"name":"a","ph":"C","ts":0,"pid":0,"tid":0}])")
                   .ok());
  EXPECT_FALSE(
      check_trace_json(
          R"([{"name":"a","ph":"C","ts":0,"pid":0,"tid":0,
               "args":{"value":"high"}}])")
          .ok());
  // Metadata with an unknown name.
  EXPECT_FALSE(
      check_trace_json(
          R"([{"name":"mystery","ph":"M","ts":0,"pid":0,"tid":0,
               "args":{"name":"x"}}])")
          .ok());
  // args must be an object when present.
  EXPECT_FALSE(
      check_trace_json(
          R"([{"name":"a","ph":"i","ts":0,"pid":0,"tid":0,"args":[1]}])")
          .ok());
  // An event must be an object.
  EXPECT_FALSE(check_trace_json(R"([17])").ok());
}

TEST(SchemaCheck, ErrorCollectionStopsAtTheCap) {
  std::string many = "[";
  for (int i = 0; i < 200; ++i) {
    if (i != 0) many += ",";
    many += R"({"ph":"i","ts":0,"pid":0,"tid":0})";  // all missing "name"
  }
  many += "]";
  const auto report = check_trace_json(many);
  EXPECT_FALSE(report.ok());
  EXPECT_LE(report.errors.size(), TraceCheckReport::kMaxErrors + 1);
  EXPECT_EQ(report.event_count, 200U);
}

TEST(SchemaCheck, ParsesEscapesAndNestedStructures) {
  const char* kTrace = R"([{"name":"a\"b\\cA","ph":"i","ts":1.5,
    "pid":0,"tid":0,"cat":"sim",
    "args":{"s":"line\nbreak","n":-2.5e3,"flag":true,"none":null}}])";
  const auto report = check_trace_json(kTrace);
  EXPECT_TRUE(report.ok()) << (report.errors.empty() ? "" : report.errors[0]);
  EXPECT_EQ(report.event_count, 1U);
}

TEST(SchemaCheck, RejectsNonFiniteNumbers) {
  // JSON has no literal NaN/Infinity; the parser must reject them rather
  // than silently producing a non-finite timestamp.
  EXPECT_FALSE(
      check_trace_json(
          R"([{"name":"a","ph":"i","ts":NaN,"pid":0,"tid":0}])")
          .ok());
  EXPECT_FALSE(
      check_trace_json(
          R"([{"name":"a","ph":"i","ts":Infinity,"pid":0,"tid":0}])")
          .ok());
}

TEST(BenchSchema, AcceptsMinimalAndFullDocuments) {
  EXPECT_TRUE(check_bench_json(
                  R"({"bench":"x","config":{},"wall_ms":1,)"
                  R"("events_per_sec":2,"metrics":{}})")
                  .empty());
  EXPECT_TRUE(check_bench_json(
                  R"({"bench":"fleet_throughput",)"
                  R"("config":{"nodes":10,"router":"RR","traced":false},)"
                  R"("wall_ms":12.5,"events_per_sec":800.0,)"
                  R"("metrics":{"speedup":3.5},"extra":"ignored"})")
                  .empty());
}

TEST(BenchSchema, RejectsMissingOrMistypedFields) {
  // No bench name.
  EXPECT_FALSE(check_bench_json(
                   R"({"config":{},"wall_ms":1,"events_per_sec":2,)"
                   R"("metrics":{}})")
                   .empty());
  // Empty bench name.
  EXPECT_FALSE(check_bench_json(
                   R"({"bench":"","config":{},"wall_ms":1,)"
                   R"("events_per_sec":2,"metrics":{}})")
                   .empty());
  // config values must be scalars.
  EXPECT_FALSE(check_bench_json(
                   R"({"bench":"x","config":{"nested":{}},"wall_ms":1,)"
                   R"("events_per_sec":2,"metrics":{}})")
                   .empty());
  // wall_ms must be a non-negative number.
  EXPECT_FALSE(check_bench_json(
                   R"({"bench":"x","config":{},"wall_ms":-1,)"
                   R"("events_per_sec":2,"metrics":{}})")
                   .empty());
  // metrics values must be numbers.
  EXPECT_FALSE(check_bench_json(
                   R"({"bench":"x","config":{},"wall_ms":1,)"
                   R"("events_per_sec":2,"metrics":{"m":"no"}})")
                   .empty());
  // Malformed JSON never throws.
  EXPECT_FALSE(check_bench_json("{").empty());
  EXPECT_FALSE(check_bench_json("[]").empty());
}

TEST(SimlintSchema, AcceptsEmptyAndPopulatedReports) {
  EXPECT_TRUE(check_simlint_json(
                  R"({"tool":"simlint","count":0,"violations":[]})")
                  .empty());
  EXPECT_TRUE(check_simlint_json(
                  R"({"tool":"simlint","count":2,"violations":[)"
                  R"({"file":"src/sim/env.cpp","line":12,)"
                  R"("rule":"banned-random","message":"use util::Rng"},)"
                  R"({"file":"src/serve/service.cpp","line":300,)"
                  R"("rule":"lock-order","message":"inversion"}],)"
                  R"("extra":"ignored"})")
                  .empty());
}

TEST(SimlintSchema, RejectsContractViolations) {
  // Wrong tool name.
  EXPECT_FALSE(check_simlint_json(
                   R"({"tool":"otherlint","count":0,"violations":[]})")
                   .empty());
  // count disagrees with the array length.
  EXPECT_FALSE(check_simlint_json(
                   R"({"tool":"simlint","count":3,"violations":[]})")
                   .empty());
  // Missing violations array.
  EXPECT_FALSE(
      check_simlint_json(R"({"tool":"simlint","count":0})").empty());
  // Violation with an empty rule.
  EXPECT_FALSE(check_simlint_json(
                   R"({"tool":"simlint","count":1,"violations":[)"
                   R"({"file":"a.cpp","line":1,"rule":"","message":"m"}]})")
                   .empty());
  // Line numbers are 1-based.
  EXPECT_FALSE(check_simlint_json(
                   R"({"tool":"simlint","count":1,"violations":[)"
                   R"({"file":"a.cpp","line":0,"rule":"r","message":"m"}]})")
                   .empty());
  // Violation missing its message.
  EXPECT_FALSE(check_simlint_json(
                   R"({"tool":"simlint","count":1,"violations":[)"
                   R"({"file":"a.cpp","line":1,"rule":"r"}]})")
                   .empty());
  // Root must be an object; malformed JSON never throws.
  EXPECT_FALSE(check_simlint_json("[]").empty());
  EXPECT_FALSE(check_simlint_json("{").empty());
}

TEST(FlowPairing, AcceptsMatchedStartStepEnd) {
  const char* kTrace = R"({"traceEvents":[
    {"name":"request","cat":"serve","ph":"s","ts":0,"pid":3,"tid":0,"id":7},
    {"name":"request","cat":"serve","ph":"t","ts":5,"pid":3,"tid":4,"id":7},
    {"name":"request","cat":"serve","ph":"f","bp":"e","ts":9,"pid":3,
     "tid":4,"id":7}
  ]})";
  const auto report = check_trace_json(kTrace);
  EXPECT_TRUE(report.ok()) << (report.errors.empty() ? "" : report.errors[0]);
  EXPECT_TRUE(report.flows_ok())
      << (report.flow_errors.empty() ? "" : report.flow_errors[0]);
  EXPECT_EQ(report.flow_start_counts.at("request"), 1U);
  EXPECT_EQ(report.flow_end_counts.at("request"), 1U);
}

TEST(FlowPairing, UnpairedFlowsAreFlowErrorsNotSchemaErrors) {
  // An end without a start: schema-valid, but the flow check must flag it.
  const char* kEndOnly = R"([
    {"name":"request","cat":"serve","ph":"f","bp":"e","ts":9,"pid":3,
     "tid":4,"id":7}
  ])";
  auto report = check_trace_json(kEndOnly);
  EXPECT_TRUE(report.ok());
  EXPECT_FALSE(report.flows_ok());
  ASSERT_EQ(report.flow_errors.size(), 1U);
  EXPECT_NE(report.flow_errors[0].find("end without a flow-start"),
            std::string::npos);

  // A start that never ends (the lost-track regression this guards).
  const char* kStartOnly = R"([
    {"name":"request","cat":"serve","ph":"s","ts":0,"pid":3,"tid":0,"id":7}
  ])";
  report = check_trace_json(kStartOnly);
  EXPECT_TRUE(report.ok());
  ASSERT_EQ(report.flow_errors.size(), 1U);
  EXPECT_NE(report.flow_errors[0].find("started but never ended"),
            std::string::npos);
}

TEST(FlowPairing, CountMismatchAndDistinctIdsAreReported) {
  // Two starts against one end on the same (cat, name, id) key.
  const char* kMismatch = R"([
    {"name":"request","cat":"serve","ph":"s","ts":0,"pid":3,"tid":0,"id":1},
    {"name":"request","cat":"serve","ph":"s","ts":1,"pid":3,"tid":0,"id":1},
    {"name":"request","cat":"serve","ph":"f","bp":"e","ts":2,"pid":3,
     "tid":1,"id":1}
  ])";
  auto report = check_trace_json(kMismatch);
  ASSERT_EQ(report.flow_errors.size(), 1U);
  EXPECT_NE(report.flow_errors[0].find("2 starts vs 1 ends"),
            std::string::npos);

  // Different ids never pair, even with matching names.
  const char* kCrossed = R"([
    {"name":"request","cat":"serve","ph":"s","ts":0,"pid":3,"tid":0,"id":1},
    {"name":"request","cat":"serve","ph":"f","bp":"e","ts":2,"pid":3,
     "tid":1,"id":2}
  ])";
  report = check_trace_json(kCrossed);
  EXPECT_EQ(report.flow_errors.size(), 2U);
}

TEST(FlowPairing, FlowEventsRequireAUsableId) {
  const char* kNoId = R"([
    {"name":"request","cat":"serve","ph":"s","ts":0,"pid":3,"tid":0}
  ])";
  const auto report = check_trace_json(kNoId);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(any_error_contains(report, "flow event needs"));
}

TEST(SnapshotSchema, AcceptsFlightRecorderShapedLines) {
  const std::string line1 =
      R"({"t":1,"seq":0,"counters":{"serve.routed":3},)"
      R"("gauges":{"serve.nodes":4},)"
      R"("histograms":{"serve.e2e_latency_s":{"count":2,"sum":0.75,)"
      R"("min":0.25,"max":0.5,"mean":0.375,"p50":0.25,"p95":0.5,"p99":0.5}},)"
      R"("slo":{"window_s":60,"goodput":1,"breaches":[]}})";
  const std::string line2 =
      R"({"t":2,"seq":1,"counters":{},"gauges":{},"histograms":{},)"
      R"("slo":{"breaches":["e2e_p99_s 0.5 > max 0.1"]}})";
  EXPECT_TRUE(check_snapshot_jsonl(line1 + "\n" + line2 + "\n").empty());
  // Blank lines between records are tolerated.
  EXPECT_TRUE(check_snapshot_jsonl(line1 + "\n\n" + line2 + "\n").empty());
}

TEST(SnapshotSchema, RejectsContractViolations) {
  const std::string valid =
      R"({"t":1,"seq":5,"counters":{},"gauges":{},"histograms":{},)"
      R"("slo":{"breaches":[]}})";
  // seq must strictly increase across lines.
  EXPECT_FALSE(check_snapshot_jsonl(valid + "\n" + valid + "\n").empty());
  // Missing "t".
  EXPECT_FALSE(check_snapshot_jsonl(
                   R"({"seq":0,"counters":{},"gauges":{},"histograms":{},)"
                   R"("slo":{"breaches":[]}})")
                   .empty());
  // Counter values must be numbers.
  EXPECT_FALSE(check_snapshot_jsonl(
                   R"({"t":1,"seq":0,"counters":{"c":"no"},"gauges":{},)"
                   R"("histograms":{},"slo":{"breaches":[]}})")
                   .empty());
  // Histogram entries need every summary field.
  EXPECT_FALSE(check_snapshot_jsonl(
                   R"({"t":1,"seq":0,"counters":{},"gauges":{},)"
                   R"("histograms":{"h":{"count":1}},)"
                   R"("slo":{"breaches":[]}})")
                   .empty());
  // Breach entries must be non-empty strings.
  EXPECT_FALSE(check_snapshot_jsonl(
                   R"({"t":1,"seq":0,"counters":{},"gauges":{},)"
                   R"("histograms":{},"slo":{"breaches":[""]}})")
                   .empty());
  // Malformed lines report a parse error and never throw.
  EXPECT_FALSE(check_snapshot_jsonl("{oops\n").empty());
}

}  // namespace
}  // namespace mlcr::obs
