// ConcurrentMetricsRegistry: the slot-sharded writes must merge into exactly
// the numbers a single-threaded MetricsRegistry fed the same samples would
// hold — counters sum, gauges resolve by newest global stamp, histograms
// merge losslessly — and a single-threaded writer must land in one slot so
// snapshots stay a pure function of the recorded samples (the determinism
// half of the DESIGN.md §13 contract). The multi-writer tests run under
// TSan in CI.
#include "obs/concurrent.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "obs/metrics_registry.hpp"

namespace mlcr::obs {
namespace {

TEST(ConcurrentRegistry, CountersSumAcrossConcurrentWriters) {
  ConcurrentMetricsRegistry registry(4);
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kPerThread = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) registry.add("events");
      registry.add("bulk", 5);
    });
  }
  for (auto& thread : threads) thread.join();

  const MetricsRegistry merged = registry.snapshot();
  EXPECT_EQ(merged.counters().at("events").value(), kThreads * kPerThread);
  EXPECT_EQ(merged.counters().at("bulk").value(), kThreads * 5U);
}

TEST(ConcurrentRegistry, HistogramSamplesSurviveTheCrossSlotMerge) {
  ConcurrentMetricsRegistry registry(4);
  constexpr std::size_t kThreads = 6;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 1; i <= kPerThread; ++i)
        registry.record("latency_s", 0.001 * static_cast<double>(i));
    });
  }
  for (auto& thread : threads) thread.join();

  const MetricsRegistry merged = registry.snapshot();
  const Histogram& h = merged.histograms().at("latency_s");
  EXPECT_EQ(h.count(), kThreads * static_cast<std::uint64_t>(kPerThread));
  // The sum is tracked exactly (not bucketed): kThreads * sum(1..500)/1000.
  EXPECT_NEAR(h.sum(), kThreads * 0.001 * (kPerThread * (kPerThread + 1) / 2),
              1e-9);
  EXPECT_DOUBLE_EQ(h.min(), 0.001);
  EXPECT_DOUBLE_EQ(h.max(), 0.5);
}

TEST(ConcurrentRegistry, GaugeResolvesToTheNewestStampAcrossSlots) {
  ConcurrentMetricsRegistry registry(4);
  // A write from another thread lands in some slot; the main thread's later
  // write carries a newer global stamp and must win the merge regardless of
  // which slots the two writes hit.
  std::thread other([&] { registry.set_gauge("depth", 1.0); });
  other.join();
  registry.set_gauge("depth", 2.0);
  EXPECT_DOUBLE_EQ(registry.snapshot().gauges().at("depth").value(), 2.0);

  // And within one slot, plain last-write-wins.
  registry.set_gauge("depth", 3.0);
  registry.set_gauge("depth", 4.0);
  EXPECT_DOUBLE_EQ(registry.snapshot().gauges().at("depth").value(), 4.0);
}

TEST(ConcurrentRegistry, SingleThreadedSnapshotMatchesAPlainRegistry) {
  ConcurrentMetricsRegistry concurrent(8);
  MetricsRegistry plain;
  for (int i = 1; i <= 200; ++i) {
    const double v = 0.003 * static_cast<double>(i);
    concurrent.add("requests");
    plain.counter("requests").add();
    concurrent.record("e2e_s", v);
    plain.histogram("e2e_s").add(v);
  }
  concurrent.set_gauge("nodes", 4.0);
  plain.gauge("nodes").set(4.0);

  const MetricsRegistry merged = concurrent.snapshot();
  EXPECT_EQ(merged.counters().at("requests").value(),
            plain.counters().at("requests").value());
  EXPECT_DOUBLE_EQ(merged.gauges().at("nodes").value(), 4.0);
  const Histogram& a = merged.histograms().at("e2e_s");
  const Histogram& b = plain.histograms().at("e2e_s");
  EXPECT_EQ(a.count(), b.count());
  EXPECT_DOUBLE_EQ(a.sum(), b.sum());
  EXPECT_DOUBLE_EQ(a.p50(), b.p50());
  EXPECT_DOUBLE_EQ(a.p99(), b.p99());
}

TEST(ConcurrentRegistry, ClearDropsEveryRecordedValue) {
  ConcurrentMetricsRegistry registry(2);
  registry.add("events", 7);
  registry.set_gauge("depth", 3.0);
  registry.record("latency_s", 0.25);
  ASSERT_GT(registry.snapshot().size(), 0U);
  registry.clear();
  EXPECT_EQ(registry.snapshot().size(), 0U);
  // The registry stays usable after a clear (episode boundaries).
  registry.add("events");
  EXPECT_EQ(registry.snapshot().counters().at("events").value(), 1U);
}

TEST(ConcurrentRegistry, SlotCountIsFixedAtConstruction) {
  const ConcurrentMetricsRegistry registry(3);
  EXPECT_EQ(registry.slot_count(), 3U);
}

}  // namespace
}  // namespace mlcr::obs
