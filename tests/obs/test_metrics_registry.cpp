// Metrics registry: exact-rank percentiles, log-bucketed histogram accuracy
// bounds, merge semantics, and the deterministic CSV dump.
#include "obs/metrics_registry.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <vector>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace mlcr::obs {
namespace {

TEST(ExactRankPercentile, MatchesNearestRankDefinition) {
  const std::vector<double> v = {5.0, 1.0, 4.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(exact_rank_percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(exact_rank_percentile(v, 20.0), 1.0);   // rank ceil(1)=1
  EXPECT_DOUBLE_EQ(exact_rank_percentile(v, 50.0), 3.0);   // rank ceil(2.5)=3
  EXPECT_DOUBLE_EQ(exact_rank_percentile(v, 90.0), 5.0);   // rank ceil(4.5)=5
  EXPECT_DOUBLE_EQ(exact_rank_percentile(v, 100.0), 5.0);
}

TEST(ExactRankPercentile, EmptyInputAndSingleSample) {
  EXPECT_DOUBLE_EQ(exact_rank_percentile({}, 50.0), 0.0);
  EXPECT_DOUBLE_EQ(exact_rank_percentile({7.5}, 1.0), 7.5);
  EXPECT_DOUBLE_EQ(exact_rank_percentile({7.5}, 99.0), 7.5);
}

TEST(ExactRankPercentile, ResultIsAlwaysAnObservedSample) {
  util::Rng rng(11);
  std::vector<double> v;
  for (int i = 0; i < 257; ++i) v.push_back(rng.uniform(0.0, 10.0));
  for (const double p : {1.0, 25.0, 50.0, 75.0, 95.0, 99.0, 99.9}) {
    const double got = exact_rank_percentile(v, p);
    EXPECT_NE(std::find(v.begin(), v.end(), got), v.end()) << "p=" << p;
  }
}

TEST(ExactRankPercentile, BatchFormMatchesTheScalarFormInRequestOrder) {
  util::Rng rng(23);
  std::vector<double> v;
  for (int i = 0; i < 311; ++i) v.push_back(rng.uniform(0.0, 5.0));
  // Deliberately unsorted, with duplicates and extremes.
  const std::vector<double> ps = {99.0, 0.0, 50.0, 50.0, 100.0, 12.5};
  const std::vector<double> batch = exact_rank_percentiles(v, ps);
  ASSERT_EQ(batch.size(), ps.size());
  for (std::size_t i = 0; i < ps.size(); ++i)
    EXPECT_DOUBLE_EQ(batch[i], exact_rank_percentile(v, ps[i]))
        << "p=" << ps[i];
  EXPECT_TRUE(exact_rank_percentiles({}, {50.0, 99.0}) ==
              (std::vector<double>{0.0, 0.0}));
}

TEST(CounterAndGauge, Basics) {
  Counter c;
  EXPECT_EQ(c.value(), 0U);
  c.add();
  c.add(4);
  EXPECT_EQ(c.value(), 5U);

  Gauge g;
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  g.set(3.5);
  g.set(-1.25);
  EXPECT_DOUBLE_EQ(g.value(), -1.25);
}

TEST(Histogram, CountSumMinMaxMean) {
  Histogram h;
  EXPECT_EQ(h.count(), 0U);
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 0.0);
  h.add(2.0);
  h.add(0.5);
  h.add(4.5);
  EXPECT_EQ(h.count(), 3U);
  EXPECT_DOUBLE_EQ(h.sum(), 7.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 4.5);
  EXPECT_NEAR(h.mean(), 7.0 / 3.0, 1e-12);
}

TEST(Histogram, PercentileErrorBoundedByBucketGrowth) {
  // The bucketed percentile must stay within one growth factor of the exact
  // nearest-rank percentile over the raw samples (and inside [min, max]).
  util::Rng rng(7);
  Histogram h;
  std::vector<double> raw;
  for (int i = 0; i < 2000; ++i) {
    const double v = std::exp(rng.uniform(-3.0, 3.0));  // spans ~6 octaves
    raw.push_back(v);
    h.add(v);
  }
  for (const double p : {50.0, 95.0, 99.0, 99.9}) {
    const double exact = exact_rank_percentile(raw, p);
    const double bucketed = h.percentile(p);
    EXPECT_GE(bucketed, h.min());
    EXPECT_LE(bucketed, h.max());
    EXPECT_GE(bucketed * h.growth(), exact) << "p=" << p;
    EXPECT_LE(bucketed, exact * h.growth()) << "p=" << p;
  }
}

TEST(Histogram, BucketUpperBoundBracketsTheValue) {
  const Histogram h;
  for (const double v : {1e-7, 1e-3, 0.7, 1.0, 12.0, 4000.0}) {
    const double ub = h.bucket_upper_bound(v);
    EXPECT_GE(ub, v);
    EXPECT_LE(v, ub);
    EXPECT_GE(ub, h.min_value());
    if (v > h.min_value()) {
      EXPECT_GE(v * h.growth(), ub);
    }
  }
}

TEST(Histogram, ZeroAndTinyValuesLandInTheFloorBucket) {
  Histogram h;
  h.add(0.0);
  h.add(1e-9);
  EXPECT_EQ(h.count(), 2U);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_LE(h.percentile(99.0), h.min_value());
}

TEST(Histogram, NegativeValueIsRejected) {
  Histogram h;
  EXPECT_THROW(h.add(-0.25), util::CheckError);
}

TEST(Histogram, MergeMatchesInterleavedAdds) {
  util::Rng rng(3);
  Histogram a;
  Histogram b;
  Histogram all;
  for (int i = 0; i < 500; ++i) {
    const double v = std::exp(rng.uniform(-2.0, 2.0));
    (i % 2 == 0 ? a : b).add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_DOUBLE_EQ(a.sum(), all.sum());
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
  for (const double p : {10.0, 50.0, 95.0, 99.0})
    EXPECT_DOUBLE_EQ(a.percentile(p), all.percentile(p)) << "p=" << p;
}

TEST(MetricsRegistry, AccessorsCreateOnFirstUseAndPersist) {
  MetricsRegistry reg;
  reg.counter("invocations").add(3);
  reg.counter("invocations").add(2);
  reg.gauge("pool_mb").set(128.0);
  reg.histogram("latency_s").add(0.5);
  EXPECT_EQ(reg.size(), 3U);
  EXPECT_EQ(reg.counter("invocations").value(), 5U);
  EXPECT_DOUBLE_EQ(reg.gauge("pool_mb").value(), 128.0);
  EXPECT_EQ(reg.histogram("latency_s").count(), 1U);
  reg.clear();
  EXPECT_EQ(reg.size(), 0U);
}

TEST(MetricsRegistry, CsvIsSortedAndComplete) {
  MetricsRegistry reg;
  // Insert out of name order; the dump must come out sorted.
  reg.counter("z_cold_starts").add(2);
  reg.counter("a_invocations").add(9);
  reg.gauge("m_pool_mb").set(64.0);
  auto& h = reg.histogram("latency_s");
  h.add(1.0);
  h.add(2.0);

  std::ostringstream os;
  reg.write_csv(os);
  const std::string csv = os.str();

  const auto pos_header = csv.find("kind,name,field,value");
  const auto pos_a = csv.find("counter,a_invocations,value,9");
  const auto pos_z = csv.find("counter,z_cold_starts,value,2");
  const auto pos_g = csv.find("gauge,m_pool_mb,value,64");
  const auto pos_count = csv.find("histogram,latency_s,count,2");
  const auto pos_p99 = csv.find("histogram,latency_s,p99,");
  ASSERT_NE(pos_header, std::string::npos) << csv;
  ASSERT_NE(pos_a, std::string::npos) << csv;
  ASSERT_NE(pos_z, std::string::npos) << csv;
  ASSERT_NE(pos_g, std::string::npos) << csv;
  ASSERT_NE(pos_count, std::string::npos) << csv;
  ASSERT_NE(pos_p99, std::string::npos) << csv;
  EXPECT_LT(pos_header, pos_a);
  EXPECT_LT(pos_a, pos_z);     // counters sorted by name
  EXPECT_LT(pos_z, pos_g);     // kinds grouped: counter < gauge < histogram
  EXPECT_LT(pos_g, pos_count);

  // Byte-identical on a second dump: the registry iterates std::map order.
  std::ostringstream os2;
  reg.write_csv(os2);
  EXPECT_EQ(csv, os2.str());
}

}  // namespace
}  // namespace mlcr::obs
