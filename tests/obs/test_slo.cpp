// Sliding-window SLO monitors: eviction keeps exactly the samples inside
// the window, the stats are exact-rank over the surviving values, and
// slo_breaches reports every violated threshold in its declared order —
// the same rule serve::Telemetry applies online and tools/obsreport applies
// offline over recorded snapshots.
#include "obs/slo.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace mlcr::obs {
namespace {

TEST(Slo, SlidingWindowEvictsOnlyExpiredSamples) {
  SlidingWindow window(5.0);
  for (int t = 0; t < 10; ++t)
    window.record(static_cast<double>(t), static_cast<double>(t));
  EXPECT_EQ(window.count(), 10U);

  // advance(10) evicts t < 10 - 5: samples 0..4 go, 5..9 stay.
  window.advance(10.0);
  EXPECT_EQ(window.count(), 5U);
  EXPECT_DOUBLE_EQ(window.max(), 9.0);
  EXPECT_DOUBLE_EQ(window.sum(), 35.0);

  // Advancing past everything leaves the watermark semantics: all zeros.
  window.advance(100.0);
  EXPECT_EQ(window.count(), 0U);
  EXPECT_DOUBLE_EQ(window.max(), 0.0);
  EXPECT_DOUBLE_EQ(window.sum(), 0.0);
  EXPECT_DOUBLE_EQ(window.percentile(99.0), 0.0);
}

TEST(Slo, SlidingWindowBatchPercentilesMatchScalarQueries) {
  SlidingWindow window(1000.0);
  // 1..100 recorded in a scrambled (but deterministic) order.
  for (int i = 0; i < 100; ++i) {
    const int v = (i * 37) % 100 + 1;
    window.record(static_cast<double>(i), static_cast<double>(v));
  }
  const std::vector<double> ps = {99.0, 0.0, 50.0, 95.0};
  const std::vector<double> batch = window.percentiles(ps);
  ASSERT_EQ(batch.size(), ps.size());
  for (std::size_t i = 0; i < ps.size(); ++i)
    EXPECT_DOUBLE_EQ(batch[i], window.percentile(ps[i])) << "p" << ps[i];
  // Order of `ps` is preserved, not sorted.
  EXPECT_DOUBLE_EQ(batch[0], 99.0);
  EXPECT_DOUBLE_EQ(batch[1], 1.0);
}

TEST(Slo, ClearEmptiesTheWindow) {
  SlidingWindow window(10.0);
  window.record(0.0, 1.0);
  window.clear();
  EXPECT_EQ(window.count(), 0U);
  EXPECT_DOUBLE_EQ(window.window_s(), 10.0);
}

TEST(Slo, PermissiveDefaultConfigNeverBreaches) {
  SloReport report;
  report.route_p95_s = 1e6;
  report.e2e_p99_s = 1e6;
  report.goodput = 0.0;
  report.rejection_rate = 1.0;
  report.queue_depth_max = 1e9;
  EXPECT_TRUE(slo_breaches(SloConfig{}, report).empty());
}

TEST(Slo, BreachesReportEveryViolatedThresholdInDeclaredOrder) {
  SloConfig config;
  config.max_route_p95_s = 0.1;
  config.max_e2e_p99_s = 0.2;
  config.min_goodput = 0.9;
  config.max_rejection_rate = 0.05;
  config.max_queue_depth = 10.0;

  SloReport report;
  report.route_p95_s = 0.5;
  report.e2e_p99_s = 0.5;
  report.goodput = 0.5;
  report.rejection_rate = 0.5;
  report.queue_depth_max = 20.0;

  const std::vector<std::string> breaches = slo_breaches(config, report);
  ASSERT_EQ(breaches.size(), 5U);
  EXPECT_EQ(breaches[0], "route_p95_s 0.5 > max 0.1");
  EXPECT_EQ(breaches[1], "e2e_p99_s 0.5 > max 0.2");
  EXPECT_EQ(breaches[2], "goodput 0.5 < min 0.9");
  EXPECT_EQ(breaches[3], "rejection_rate 0.5 > max 0.05");
  EXPECT_EQ(breaches[4], "queue_depth 20 > max 10");
}

TEST(Slo, ThresholdsAreStrictBounds) {
  // Values exactly at the bound do not breach (breach means strictly worse).
  SloConfig config;
  config.max_e2e_p99_s = 0.2;
  config.min_goodput = 0.9;
  SloReport report;
  report.e2e_p99_s = 0.2;
  report.goodput = 0.9;
  EXPECT_TRUE(slo_breaches(config, report).empty());
}

}  // namespace
}  // namespace mlcr::obs
