// Flight recorder: every write() must append one schema-valid JSONL line
// (pinned against obs::check_snapshot_jsonl — the same checker CI runs over
// real snapshot artifacts), seq must increase strictly, and a closed
// recorder must reject further writes rather than silently truncate the
// record.
#include "obs/flight_recorder.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "obs/metrics_registry.hpp"
#include "obs/schema_check.hpp"
#include "obs/slo.hpp"
#include "util/check.hpp"

namespace mlcr::obs {
namespace {

MetricsRegistry sample_metrics() {
  MetricsRegistry metrics;
  metrics.counter("serve.routed").add(3);
  metrics.gauge("serve.nodes").set(4.0);
  metrics.histogram("serve.e2e_latency_s").add(0.25);
  metrics.histogram("serve.e2e_latency_s").add(0.5);
  return metrics;
}

SloReport sample_slo() {
  SloReport slo;
  slo.window_s = 60.0;
  slo.submitted = 3;
  slo.routed = 3;
  slo.e2e_p99_s = 0.5;
  slo.goodput = 1.0;
  return slo;
}

std::size_t line_count(const std::string& text) {
  std::size_t lines = 0;
  for (const char c : text)
    if (c == '\n') ++lines;
  return lines;
}

TEST(FlightRecorder, EmitsSchemaValidJsonlWithStrictlyIncreasingSeq) {
  std::ostringstream out;
  FlightRecorder recorder(out);
  const MetricsRegistry metrics = sample_metrics();
  const SloReport slo = sample_slo();
  recorder.write(1.0, metrics, slo);
  recorder.write(2.0, metrics, slo);
  recorder.write(3.5, metrics, slo);
  recorder.close();

  EXPECT_EQ(recorder.snapshot_count(), 3U);
  const std::string text = out.str();
  EXPECT_EQ(line_count(text), 3U);
  const auto problems = check_snapshot_jsonl(text);
  EXPECT_TRUE(problems.empty()) << (problems.empty() ? "" : problems[0]);
  // seq rides in each line, 0-based and strictly increasing.
  EXPECT_NE(text.find("\"seq\":0"), std::string::npos);
  EXPECT_NE(text.find("\"seq\":1"), std::string::npos);
  EXPECT_NE(text.find("\"seq\":2"), std::string::npos);
}

TEST(FlightRecorder, RecordsSloBreachStrings) {
  std::ostringstream out;
  FlightRecorder recorder(out);
  SloReport slo = sample_slo();
  slo.breaches.push_back("e2e_p99_s 0.5 > max 0.1");
  recorder.write(1.0, sample_metrics(), slo);
  recorder.close();

  EXPECT_NE(out.str().find("e2e_p99_s 0.5 > max 0.1"), std::string::npos);
  EXPECT_TRUE(check_snapshot_jsonl(out.str()).empty());
}

TEST(FlightRecorder, CloseIsIdempotentAndRejectsLateWrites) {
  std::ostringstream out;
  FlightRecorder recorder(out);
  recorder.write(1.0, sample_metrics(), sample_slo());
  recorder.close();
  recorder.close();
  const std::string after_close = out.str();
  EXPECT_THROW(recorder.write(2.0, sample_metrics(), sample_slo()),
               util::CheckError);
  EXPECT_EQ(out.str(), after_close);
  EXPECT_EQ(recorder.snapshot_count(), 1U);
}

TEST(FlightRecorder, EmptyRegistryStillProducesAValidLine) {
  std::ostringstream out;
  FlightRecorder recorder(out);
  recorder.write(0.0, MetricsRegistry{}, SloReport{});
  recorder.close();
  EXPECT_EQ(line_count(out.str()), 1U);
  EXPECT_TRUE(check_snapshot_jsonl(out.str()).empty());
}

}  // namespace
}  // namespace mlcr::obs
