// Tracer front-end: the null fast path, event rendering through the Chrome
// and CSV sinks, multi-sink fan-out, and close() semantics.
#include "obs/tracer.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>

#include "obs/schema_check.hpp"
#include "obs/sink.hpp"

namespace mlcr::obs {
namespace {

bool contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

TEST(Tracer, NoSinksMeansDisabledAndEmitsNothing) {
  Tracer tracer;
  EXPECT_FALSE(tracer.enabled());
  // Emits against a disabled tracer are cheap no-ops, not errors: this is
  // exactly what an unguarded instrumentation site would do.
  tracer.span(Tracer::kSimPid, 0, 0, 10, "startup", "sim");
  tracer.instant(Tracer::kSimPid, 0, 0, "match", "sim");
  tracer.counter(Tracer::kSimPid, 0, 0, "pool_used_mb", 1.0);
  EXPECT_EQ(tracer.event_count(), 0U);
}

TEST(Tracer, ChromeSinkProducesSchemaValidJson) {
  std::ostringstream out;
  {
    Tracer tracer;
    tracer.add_sink(std::make_shared<ChromeTraceSink>(out));
    EXPECT_TRUE(tracer.enabled());
    tracer.process_name(Tracer::kSimPid, "simulated-cluster");
    tracer.thread_name(Tracer::kSimPid, 0, "node0");
    tracer.instant(Tracer::kSimPid, 0, 5, "match", "sim",
                   {sarg("level", "L2"), narg("container", std::int64_t{3})});
    tracer.span(Tracer::kSimPid, 0, 5, 1200, "startup", "sim",
                {sarg("function", "py-flask")});
    tracer.counter(Tracer::kSimPid, 0, 5, "pool_used_mb", 130.5);
    tracer.close();
    EXPECT_EQ(tracer.event_count(), 5U);
  }
  const auto report = check_trace_json(out.str());
  EXPECT_TRUE(report.ok()) << (report.errors.empty() ? "" : report.errors[0]);
  EXPECT_EQ(report.event_count, 5U);
  EXPECT_EQ(report.span_counts.at("startup"), 1U);
  EXPECT_EQ(report.instant_counts.at("match"), 1U);
  EXPECT_EQ(report.counter_counts.at("pool_used_mb"), 1U);
}

TEST(Tracer, ChromeSinkRendersFieldsExactly) {
  std::ostringstream out;
  Tracer tracer;
  tracer.add_sink(std::make_shared<ChromeTraceSink>(out));
  tracer.span(Tracer::kSimPid, 2, 100, 250, "exec", "sim",
              {narg("seq", std::int64_t{7})});
  tracer.close();
  const std::string json = out.str();
  EXPECT_TRUE(contains(json, "\"name\":\"exec\"")) << json;
  EXPECT_TRUE(contains(json, "\"ph\":\"X\"")) << json;
  EXPECT_TRUE(contains(json, "\"ts\":100")) << json;
  EXPECT_TRUE(contains(json, "\"dur\":250")) << json;
  EXPECT_TRUE(contains(json, "\"pid\":0")) << json;
  EXPECT_TRUE(contains(json, "\"tid\":2")) << json;
  EXPECT_TRUE(contains(json, "\"args\":{\"seq\":7}")) << json;
  EXPECT_TRUE(contains(json, "\"displayTimeUnit\":\"ms\"")) << json;
}

TEST(Tracer, EverySinkReceivesEveryEvent) {
  std::ostringstream chrome_out;
  std::ostringstream csv_out;
  Tracer tracer;
  tracer.add_sink(std::make_shared<ChromeTraceSink>(chrome_out));
  tracer.add_sink(std::make_shared<CsvTraceSink>(csv_out));
  tracer.instant(Tracer::kSimPid, 0, 1, "match", "sim");
  tracer.counter(Tracer::kTrainPid, 1, 4, "loss", 0.25);
  tracer.close();
  EXPECT_TRUE(contains(chrome_out.str(), "\"name\":\"match\""));
  EXPECT_TRUE(contains(chrome_out.str(), "\"name\":\"loss\""));
  EXPECT_TRUE(contains(csv_out.str(), "i,0,0,1,0,sim,match,"));
  EXPECT_TRUE(contains(csv_out.str(), "C,1,1,4,0,,loss,value=0.25"));
}

TEST(Tracer, CsvSinkEscapesSeparators) {
  std::ostringstream out;
  Tracer tracer;
  tracer.add_sink(std::make_shared<CsvTraceSink>(out));
  tracer.instant(Tracer::kSimPid, 0, 0, "a,b|c", "cat,x",
                 {sarg("k|1", "v,2")});
  tracer.close();
  EXPECT_TRUE(contains(out.str(), "i,0,0,0,0,cat;x,a;b;c,k;1=v;2"))
      << out.str();
}

TEST(Tracer, CloseIsIdempotentAndDropsLateEvents) {
  std::ostringstream out;
  Tracer tracer;
  tracer.add_sink(std::make_shared<ChromeTraceSink>(out));
  tracer.instant(Tracer::kSimPid, 0, 1, "match", "sim");
  tracer.close();
  tracer.close();
  const std::string after_close = out.str();
  // Emits after close are dropped, not appended to the finalized JSON.
  tracer.instant(Tracer::kSimPid, 0, 2, "late", "sim");
  EXPECT_EQ(out.str(), after_close);
  EXPECT_EQ(tracer.event_count(), 1U);
  EXPECT_TRUE(check_trace_json(out.str()).ok());
}

TEST(Tracer, JsonEscapeHandlesControlCharactersAndQuotes) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(Tracer, FormatNumberIsCompactAndRoundTrips) {
  EXPECT_EQ(format_number(3.0), "3");
  EXPECT_EQ(format_number(0.25), "0.25");
  EXPECT_EQ(format_number(-1.5), "-1.5");
  const double v = 0.12345678901;
  EXPECT_DOUBLE_EQ(std::stod(format_number(v)), v);
}

TEST(Tracer, ToMicrosRoundsToNearest) {
  EXPECT_EQ(to_micros(0.0), 0);
  EXPECT_EQ(to_micros(1.5), 1'500'000);
  EXPECT_EQ(to_micros(0.0000004), 0);
  EXPECT_EQ(to_micros(0.0000006), 1);
}

TEST(Tracer, FlowEventsCarryTheirIdAndBindTheEndToTheEnclosingSlice) {
  std::ostringstream out;
  Tracer tracer;
  tracer.add_sink(std::make_shared<ChromeTraceSink>(out));
  tracer.flow_start(Tracer::kServePid, 0, 10, 42, "request", "serve");
  tracer.flow_step(Tracer::kServePid, 2, 20, 42, "request", "serve");
  tracer.flow_end(Tracer::kServePid, 2, 30, 42, "request", "serve");
  tracer.close();
  const std::string json = out.str();

  EXPECT_TRUE(contains(json, "\"ph\":\"s\"")) << json;
  EXPECT_TRUE(contains(json, "\"ph\":\"t\"")) << json;
  EXPECT_TRUE(contains(json, "\"ph\":\"f\"")) << json;
  EXPECT_TRUE(contains(json, "\"id\":42")) << json;
  // Per the trace_event spec the end binds to its enclosing slice; only the
  // "f" event may carry the binding point.
  EXPECT_TRUE(contains(json, "\"bp\":\"e\"")) << json;

  const auto report = check_trace_json(json);
  EXPECT_TRUE(report.ok());
  EXPECT_TRUE(report.flows_ok())
      << (report.flow_errors.empty() ? "" : report.flow_errors[0]);
  EXPECT_EQ(report.flow_start_counts.at("request"), 1U);
  EXPECT_EQ(report.flow_end_counts.at("request"), 1U);
}

TEST(Tracer, CsvSinkRendersTheFlowIdAsAPseudoArg) {
  std::ostringstream out;
  Tracer tracer;
  tracer.add_sink(std::make_shared<CsvTraceSink>(out));
  tracer.flow_start(Tracer::kServePid, 1, 0, 7, "request", "serve");
  tracer.close();
  EXPECT_TRUE(contains(out.str(), "flow_id=7")) << out.str();
}

}  // namespace
}  // namespace mlcr::obs
