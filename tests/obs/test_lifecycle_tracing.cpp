// End-to-end lifecycle tracing: the spans/instants/counters the instrumented
// layers emit (ClusterEnv, WarmPool, FleetEnv, DqnAgent), and the headline
// determinism property — sim-track traces are a pure function of the episode,
// so two identical runs produce byte-identical sink output.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>

#include "containers/matching.hpp"
#include "fleet/fleet_env.hpp"
#include "fleet/router.hpp"
#include "fstartbench/workloads.hpp"
#include "obs/schema_check.hpp"
#include "obs/sink.hpp"
#include "obs/tracer.hpp"
#include "policies/baselines.hpp"
#include "policies/runner.hpp"
#include "rl/dqn.hpp"
#include "testing/fixtures.hpp"

namespace mlcr {
namespace {

using mlcr::testing::TinyWorld;

/// Cold start + L2 warm reuse of the parked container, traced.
std::string traced_episode_json(const TinyWorld& world) {
  std::ostringstream out;
  obs::Tracer tracer;
  tracer.add_sink(std::make_shared<obs::ChromeTraceSink>(out));
  auto env = world.make_env();
  env.set_tracer(&tracer);
  const sim::Trace trace =
      TinyWorld::make_trace({TinyWorld::inv(world.fn_py_flask, 0.0, 0.5),
                             TinyWorld::inv(world.fn_py_numpy, 100.0, 0.5)});
  env.reset(trace);
  (void)env.step(sim::Action::cold());
  const auto idle = env.pool().idle_containers();
  EXPECT_EQ(idle.size(), 1U);
  const sim::StepResult warm = env.step(sim::Action::reuse(idle[0]->id));
  EXPECT_FALSE(warm.cold);
  EXPECT_EQ(warm.match, containers::MatchLevel::kL2);
  tracer.close();
  return out.str();
}

TEST(LifecycleTracing, EnvEmitsMatchStartupChildrenExecAndPoolEvents) {
  const TinyWorld world;
  const std::string json = traced_episode_json(world);
  const auto report = obs::check_trace_json(json);
  ASSERT_TRUE(report.ok()) << (report.errors.empty() ? "" : report.errors[0]);

  // One match instant and one startup + exec span per invocation.
  EXPECT_EQ(report.instant_counts.at("match"), 2U);
  EXPECT_EQ(report.span_counts.at("startup"), 2U);
  EXPECT_EQ(report.span_counts.at("exec"), 2U);
  // The L2 reuse repacks the parked container (paper Sec. III): its span
  // carries the cleaner's volume plan.
  EXPECT_GE(report.span_counts.at("repack"), 1U);
  EXPECT_TRUE(json.find("unmounted_volumes") != std::string::npos) << json;
  // Pool lifecycle: the cold container is admitted after its first
  // execution, then taken for the warm reuse; occupancy counters follow.
  EXPECT_GE(report.instant_counts.at("pool_admit"), 1U);
  EXPECT_GE(report.instant_counts.at("pool_take"), 1U);
  EXPECT_GE(report.counter_counts.at("pool_used_mb"), 1U);
  EXPECT_GE(report.counter_counts.at("pool_containers"), 1U);
}

TEST(LifecycleTracing, SimTrackTraceIsByteIdenticalAcrossRuns) {
  const TinyWorld world;
  const std::string first = traced_episode_json(world);
  const std::string second = traced_episode_json(world);
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

TEST(LifecycleTracing, DetachedTracerEmitsNothing) {
  const TinyWorld world;
  obs::Tracer tracer;  // no sinks
  auto env = world.make_env();
  env.set_tracer(&tracer);
  const sim::Trace trace =
      TinyWorld::make_trace({TinyWorld::inv(world.fn_py_flask, 0.0)});
  env.reset(trace);
  (void)env.step(sim::Action::cold());
  EXPECT_EQ(tracer.event_count(), 0U);
  // And a null tracer is simply ignored.
  env.set_tracer(nullptr);
  env.reset(trace);
  (void)env.step(sim::Action::cold());
}

TEST(LifecycleTracing, PoolEvictionAndExpiryAreTraced) {
  const TinyWorld world;
  std::ostringstream out;
  obs::Tracer tracer;
  tracer.add_sink(std::make_shared<obs::ChromeTraceSink>(out));
  // A pool that fits one container forces an eviction on the second admit;
  // a short TTL expires the survivor later.
  auto env = world.make_env(/*pool_mb=*/200.0, /*ttl=*/5.0);
  env.set_tracer(&tracer);
  const sim::Trace trace =
      TinyWorld::make_trace({TinyWorld::inv(world.fn_py_flask, 0.0, 0.1),
                             TinyWorld::inv(world.fn_other_os, 10.0, 0.1),
                             TinyWorld::inv(world.fn_js, 100.0, 0.1)});
  env.reset(trace);
  while (!env.done()) (void)env.step(sim::Action::cold());
  tracer.close();
  const auto report = obs::check_trace_json(out.str());
  ASSERT_TRUE(report.ok()) << (report.errors.empty() ? "" : report.errors[0]);
  const bool evicted_or_expired =
      report.instant_counts.count("pool_evict") != 0 ||
      report.instant_counts.count("pool_expire") != 0 ||
      report.instant_counts.count("pool_reject") != 0;
  EXPECT_TRUE(evicted_or_expired) << out.str();
}

TEST(LifecycleTracing, FleetRoutesOnPerNodeTracks) {
  const auto bench = fstartbench::make_benchmark();
  const sim::StartupCostModel cost(bench.catalog,
                                   fstartbench::default_cost_config());
  util::Rng trace_rng(5);
  const sim::Trace trace =
      fstartbench::make_overall_workload(bench, 40, trace_rng);

  std::ostringstream out;
  obs::Tracer tracer;
  tracer.add_sink(std::make_shared<obs::ChromeTraceSink>(out));

  fleet::FleetConfig cfg;
  cfg.nodes = 3;
  cfg.node_env.pool_capacity_mb = 1000.0;
  fleet::FleetEnv env(bench.functions, bench.catalog, cost, cfg,
                      fleet::uniform_system(policies::make_greedy_match_system));
  env.set_tracer(&tracer);
  const auto router = fleet::standard_routers().front().make();
  (void)env.run(trace, *router);
  tracer.close();

  const auto report = obs::check_trace_json(out.str());
  ASSERT_TRUE(report.ok()) << (report.errors.empty() ? "" : report.errors[0]);
  EXPECT_EQ(report.instant_counts.at("route"), 40U);
  EXPECT_GE(report.counter_counts.at("node_outstanding"), 1U);
  // Every invocation's lifecycle landed on some node's track.
  EXPECT_EQ(report.span_counts.at("startup"), 40U);
  // Node tracks are labelled for Perfetto.
  EXPECT_TRUE(out.str().find("node0") != std::string::npos);
  EXPECT_TRUE(out.str().find("node2") != std::string::npos);
}

TEST(LifecycleTracing, DqnTrainStepsEmitGradientTrackCounters) {
  rl::DqnConfig cfg;
  cfg.network.feature_dim = 4;
  cfg.network.num_slots = 2;
  cfg.network.embed_dim = 8;
  cfg.network.heads = 2;
  cfg.network.blocks = 1;
  cfg.network.ffn_dim = 16;
  cfg.batch_size = 8;
  cfg.min_replay = 8;
  cfg.target_sync_every = 10;
  rl::DqnAgent agent(cfg, util::Rng(1));

  nn::Tensor state(4, 4);
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t c = 0; c < 4; ++c)
      state(r, c) = 0.2F * static_cast<float>(r) + 0.1F * static_cast<float>(c);
  for (int i = 0; i < 16; ++i) {
    rl::Transition t;
    t.state = state;
    t.action = static_cast<std::size_t>(i % 3);
    t.reward = -0.5F;
    t.terminal = true;
    agent.observe(std::move(t));
  }

  std::ostringstream out;
  obs::Tracer tracer;
  tracer.add_sink(std::make_shared<obs::ChromeTraceSink>(out));
  agent.set_tracer(&tracer);
  util::Rng rng(2);
  for (int i = 0; i < 12; ++i) ASSERT_TRUE(agent.train_step(rng).has_value());
  agent.set_tracer(nullptr);
  tracer.close();

  const auto report = obs::check_trace_json(out.str());
  ASSERT_TRUE(report.ok()) << (report.errors.empty() ? "" : report.errors[0]);
  EXPECT_EQ(report.counter_counts.at("loss"), 12U);
  EXPECT_EQ(report.counter_counts.at("replay_occupancy"), 12U);
  EXPECT_EQ(report.counter_counts.at("target_staleness"), 12U);
  // 12 steps with target_sync_every=10 cross at least one sync boundary.
  EXPECT_GE(report.instant_counts.at("target_sync"), 1U);
}

}  // namespace
}  // namespace mlcr
