// Faults at fleet scope: crash windows drive re-routing and loss
// accounting, a 1-node faulted fleet reproduces the single-env protocol
// bit-for-bit, repeated runs inject identical faults, and malformed traces
// are rejected with a diagnostic naming the invocation.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "faults/injector.hpp"
#include "fleet/fleet_env.hpp"
#include "fleet/router.hpp"
#include "policies/baselines.hpp"
#include "policies/runner.hpp"
#include "testing/fixtures.hpp"
#include "util/check.hpp"

namespace mlcr {
namespace {

using testing::TinyWorld;

sim::Trace steady_trace(const TinyWorld& world, int count, double gap_s,
                        double exec_s = 0.5) {
  std::vector<sim::Invocation> invs;
  for (int i = 0; i < count; ++i) {
    const auto fn = i % 2 == 0 ? world.fn_py_flask : world.fn_py_numpy;
    invs.push_back(TinyWorld::inv(fn, gap_s * i, exec_s));
  }
  return sim::Trace(std::move(invs));
}

fleet::FleetEnv make_fleet(const TinyWorld& world, fleet::FleetConfig cfg) {
  return fleet::FleetEnv(
      world.functions, world.catalog, world.cost_model(), cfg,
      fleet::uniform_system(policies::make_greedy_match_system));
}

TEST(FaultFleet, OneNodeFaultedFleetMatchesSingleEnvBitForBit) {
  TinyWorld world;
  faults::FaultPlan plan;
  plan.startup_failure_prob = 0.3;
  plan.retry.max_attempts = 2;

  fleet::FleetConfig cfg;
  cfg.nodes = 1;
  cfg.seed = 77;
  cfg.faults = plan;
  fleet::FleetEnv fleet_env = make_fleet(world, cfg);
  fleet::RoundRobinRouter router;
  // Overlapping arrivals keep the warm containers busy, forcing cold starts
  // (and therefore startup-failure draws) throughout the episode.
  const sim::Trace trace = steady_trace(world, 30, 1.0, /*exec_s=*/6.0);
  const fleet::FleetSummary fs = fleet_env.run(trace, router);

  // A single ClusterEnv driven with an injector on the same split stream
  // must reproduce the fleet's node 0 exactly.
  policies::SystemSpec spec = policies::make_greedy_match_system();
  sim::EnvConfig env_cfg = cfg.node_env;
  env_cfg.keep_alive_ttl_s = spec.keep_alive_ttl_s;
  env_cfg.reuse_semantics = spec.reuse_semantics;
  sim::ClusterEnv env(world.functions, world.catalog, world.cost_model(),
                      env_cfg, spec.eviction_factory);
  faults::FaultInjector injector(
      plan, fleet::FleetEnv::node_fault_stream(cfg.seed, 1, 0));
  env.set_fault_injector(&injector);
  (void)policies::run_episode(env, *spec.scheduler, trace);

  EXPECT_GT(env.metrics().failed_count() + env.metrics().retry_count(), 0U)
      << "fault rate too low to exercise anything";
  EXPECT_EQ(fs.merged.latencies(), env.metrics().latencies());
  EXPECT_EQ(fs.total.failed, env.metrics().failed_count());
  EXPECT_EQ(fs.total.retries, env.metrics().retry_count());
  EXPECT_EQ(fs.total.cold_starts, env.metrics().cold_start_count());
  EXPECT_EQ(fs.total.total_latency_s, env.metrics().total_latency_s());
}

TEST(FaultFleet, CrashWindowReroutesEveryInvocationWithZeroLoss) {
  TinyWorld world;
  fleet::FleetConfig cfg;
  cfg.nodes = 2;
  cfg.seed = 5;
  cfg.faults.crashes.push_back({0, 22.0, 48.0});
  fleet::FleetEnv env = make_fleet(world, cfg);
  // Round-robin keeps aiming at node 0 while it is down, so the fleet's
  // failover path must carry those invocations to node 1.
  fleet::RoundRobinRouter router;
  const sim::Trace trace = steady_trace(world, 20, 5.0);
  const fleet::FleetSummary fs = env.run(trace, router);

  EXPECT_EQ(fs.node_crashes, 1U);
  EXPECT_EQ(fs.node_recoveries, 1U);
  EXPECT_EQ(fs.lost, 0U);
  EXPECT_GT(fs.rerouted, 0U);
  EXPECT_EQ(fs.total.invocations, trace.size());
  EXPECT_DOUBLE_EQ(fs.goodput(), 1.0);  // no capacity was actually missing
  // Node 0 lost its warm pool in the crash, so the episode pays extra cold
  // starts after recovery.
  EXPECT_GT(fs.total.cold_starts, 2U);
}

TEST(FaultFleet, FailoverRouterAvoidsDownNodesBeforeTheFleetMust) {
  TinyWorld world;
  fleet::FleetConfig cfg;
  cfg.nodes = 2;
  cfg.seed = 5;
  cfg.faults.crashes.push_back({0, 22.0, 48.0});
  fleet::FleetEnv env = make_fleet(world, cfg);
  fleet::FailoverRouter router(std::make_unique<fleet::RoundRobinRouter>());
  EXPECT_EQ(router.name(), "Failover(Round-Robin)");
  const sim::Trace trace = steady_trace(world, 20, 5.0);
  const fleet::FleetSummary fs = env.run(trace, router);

  // The wrapper already routes around the crash, so the fleet's own
  // last-resort failover never fires.
  EXPECT_EQ(fs.rerouted, 0U);
  EXPECT_EQ(fs.lost, 0U);
  EXPECT_EQ(fs.total.invocations, trace.size());

  const fleet::RouterSpec wrapped = fleet::with_failover(
      {"Round-Robin",
       [] { return std::make_unique<fleet::RoundRobinRouter>(); }});
  EXPECT_EQ(wrapped.name, "Failover(Round-Robin)");
  EXPECT_EQ(wrapped.make()->name(), "Failover(Round-Robin)");
}

TEST(FaultFleet, AllNodesDownLosesInvocationsButAccountsForThem) {
  TinyWorld world;
  fleet::FleetConfig cfg;
  cfg.nodes = 1;
  cfg.seed = 3;
  cfg.faults.crashes.push_back({0, 10.0, 30.0});
  fleet::FleetEnv env = make_fleet(world, cfg);
  fleet::RoundRobinRouter router;
  const sim::Trace trace =
      TinyWorld::make_trace({TinyWorld::inv(world.fn_py_flask, 0.0, 0.5),
                             TinyWorld::inv(world.fn_py_flask, 15.0, 0.5),
                             TinyWorld::inv(world.fn_py_flask, 20.0, 0.5),
                             TinyWorld::inv(world.fn_py_flask, 40.0, 0.5)});
  const fleet::FleetSummary fs = env.run(trace, router);

  EXPECT_EQ(fs.lost, 2U);  // arrivals inside the down window
  EXPECT_EQ(fs.total.invocations, 2U);
  EXPECT_EQ(fs.total.failed, 0U);
  EXPECT_DOUBLE_EQ(fs.goodput(), 0.5);
  EXPECT_EQ(fs.node_crashes, 1U);
  EXPECT_EQ(fs.node_recoveries, 1U);
}

TEST(FaultFleet, RepeatedRunsInjectIdenticalFaults) {
  TinyWorld world;
  fleet::FleetConfig cfg;
  cfg.nodes = 3;
  cfg.seed = 21;
  cfg.faults.startup_failure_prob = 0.25;
  cfg.faults.retry.max_attempts = 2;
  cfg.faults.crashes.push_back({1, 20.0, 45.0});
  fleet::FleetEnv env = make_fleet(world, cfg);
  const sim::Trace trace = steady_trace(world, 40, 3.0);

  fleet::RoundRobinRouter r1;
  const fleet::FleetSummary a = env.run(trace, r1);
  fleet::RoundRobinRouter r2;
  const fleet::FleetSummary b = env.run(trace, r2);

  EXPECT_EQ(a.total.failed, b.total.failed);
  EXPECT_EQ(a.total.retries, b.total.retries);
  EXPECT_EQ(a.lost, b.lost);
  EXPECT_EQ(a.rerouted, b.rerouted);
  EXPECT_EQ(a.total.total_latency_s, b.total.total_latency_s);
  EXPECT_EQ(a.merged.latencies(), b.merged.latencies());
}

TEST(FaultFleet, FaultlessRetryPolicyAttachesNoMachinery) {
  TinyWorld world;
  fleet::FleetConfig plain_cfg;
  plain_cfg.nodes = 2;
  plain_cfg.seed = 9;
  fleet::FleetConfig retry_cfg = plain_cfg;
  retry_cfg.faults.retry.max_attempts = 5;  // a policy alone injects nothing
  ASSERT_TRUE(retry_cfg.faults.faultless());

  fleet::FleetEnv plain = make_fleet(world, plain_cfg);
  fleet::FleetEnv with_retry = make_fleet(world, retry_cfg);
  const sim::Trace trace = steady_trace(world, 24, 4.0);
  fleet::WarmAwareRouter r1;
  fleet::WarmAwareRouter r2;
  const fleet::FleetSummary a = plain.run(trace, r1);
  const fleet::FleetSummary b = with_retry.run(trace, r2);
  EXPECT_EQ(a.total.total_latency_s, b.total.total_latency_s);
  EXPECT_EQ(a.merged.latencies(), b.merged.latencies());
  EXPECT_EQ(b.total.failed, 0U);
  EXPECT_EQ(b.node_crashes, 0U);
}

TEST(FaultFleet, RunRejectsTracesNamingUnknownFunctions) {
  TinyWorld world;
  fleet::FleetConfig cfg;
  cfg.nodes = 2;
  fleet::FleetEnv env = make_fleet(world, cfg);
  std::vector<sim::Invocation> invs = {
      TinyWorld::inv(world.fn_py_flask, 0.0, 0.5),
      TinyWorld::inv(world.fn_py_flask, 1.0, 0.5)};
  invs[1].function =
      static_cast<sim::FunctionTypeId>(world.functions.size() + 3);
  const sim::Trace bad(std::move(invs));
  fleet::RoundRobinRouter router;
  try {
    (void)env.run(bad, router);
    FAIL() << "malformed trace accepted";
  } catch (const util::CheckError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("unknown function"), std::string::npos) << msg;
    EXPECT_NE(msg.find("invocation 1"), std::string::npos) << msg;
  }
}

/// §14 rack fixture: 6 primaries in two 3-node domains + one cold spare.
/// A whole rack goes down together at t=2 (node 2 partially) and one
/// independent partial window hits node 4 later.
fleet::FleetConfig rack_config() {
  faults::FaultPlan plan;
  plan.startup_failure_prob = 0.2;
  plan.retry.max_attempts = 3;
  plan.domains = {{0, {0, 1, 2}}, {1, {3, 4, 5}}};
  plan.crashes.push_back({0, 2.0, 5.0, false, 0});
  plan.crashes.push_back({1, 2.0, 4.5, false, 0});
  plan.crashes.push_back({2, 2.0, 4.0, true, 0});
  plan.crashes.push_back({4, 7.0, 9.0, true, faults::kNoDomain});

  fleet::FleetConfig cfg;
  cfg.nodes = 6;
  cfg.spare_nodes = 1;
  cfg.seed = 77;
  cfg.faults = plan;
  return cfg;
}

TEST(FaultFleet, DomainCrashCountsEventsAdmitsSparesAndKeepsAccounting) {
  TinyWorld world;
  fleet::FleetEnv env = make_fleet(world, rack_config());
  const sim::Trace trace = steady_trace(world, 40, 0.3);
  fleet::FailoverRouter router(std::make_unique<fleet::WarmAwareRouter>());

  EXPECT_EQ(env.routable_count(), 6U);
  EXPECT_EQ(env.node_count(), 7U);
  EXPECT_FALSE(env.node_routable(6));
  const fleet::FleetSummary fs = env.run(trace, router);

  // One domain-level event (three member windows share a down_at), four
  // node crashes total, two of them partial, and the first crash admitted
  // the spare into the routable prefix.
  EXPECT_EQ(fs.domain_crashes, 1U);
  EXPECT_EQ(fs.node_crashes, 4U);
  EXPECT_EQ(fs.partial_crashes, 2U);
  EXPECT_EQ(fs.node_recoveries, 4U);
  EXPECT_EQ(fs.spares_activated, 1U);
  EXPECT_TRUE(env.node_routable(6));
  EXPECT_EQ(fs.total.invocations + fs.lost, trace.size());
  // The spare served traffic once admitted (half the fleet was down).
  ASSERT_EQ(fs.per_node.size(), 7U);
  EXPECT_GT(fs.per_node[6].invocations, 0U);

  // Repeated runs of the same faulted fleet are bit-identical.
  fleet::FleetEnv env2 = make_fleet(world, rack_config());
  fleet::FailoverRouter router2(std::make_unique<fleet::WarmAwareRouter>());
  const fleet::FleetSummary fs2 = env2.run(trace, router2);
  EXPECT_EQ(fs.total.invocations, fs2.total.invocations);
  EXPECT_EQ(fs.total.failed, fs2.total.failed);
  EXPECT_DOUBLE_EQ(fs.total.total_latency_s, fs2.total.total_latency_s);
  EXPECT_EQ(fs.lost, fs2.lost);
  EXPECT_EQ(fs.rerouted, fs2.rerouted);
}

TEST(FaultFleet, FaultlessSpareFleetMatchesNoSpareFleetBitForBit) {
  TinyWorld world;
  const sim::Trace trace = steady_trace(world, 30, 0.4);

  fleet::FleetConfig no_spares;
  no_spares.nodes = 4;
  no_spares.seed = 9;
  fleet::FleetConfig spares = no_spares;
  spares.spare_nodes = 2;

  fleet::FleetEnv plain = make_fleet(world, no_spares);
  fleet::FleetEnv elastic = make_fleet(world, spares);
  fleet::RoundRobinRouter r1, r2;
  const fleet::FleetSummary a = plain.run(trace, r1);
  const fleet::FleetSummary b = elastic.run(trace, r2);

  // Without a crash no spare is ever admitted: routing, scheduling and
  // totals are bit-identical; the spares idle with empty pools.
  EXPECT_EQ(b.spares_activated, 0U);
  EXPECT_EQ(elastic.routable_count(), 4U);
  EXPECT_EQ(a.total.invocations, b.total.invocations);
  EXPECT_EQ(a.total.cold_starts, b.total.cold_starts);
  EXPECT_DOUBLE_EQ(a.total.total_latency_s, b.total.total_latency_s);
  for (std::size_t n = 0; n < 4; ++n)
    EXPECT_EQ(a.per_node[n].invocations, b.per_node[n].invocations)
        << "node " << n;
  for (std::size_t n = 4; n < 6; ++n)
    EXPECT_EQ(b.per_node[n].invocations, 0U) << "spare " << n;
}

}  // namespace
}  // namespace mlcr
