// FaultPlan and FaultInjector: plan validation, backoff arithmetic, crash
// window sampling, and the injector's deterministic stream discipline.
#include "faults/fault_plan.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "faults/injector.hpp"
#include "util/check.hpp"

namespace mlcr::faults {
namespace {

TEST(FaultPlan, DefaultPlanIsFaultlessAndValid) {
  const FaultPlan plan;
  EXPECT_TRUE(plan.faultless());
  plan.validate(1);
  plan.validate(SIZE_MAX);
}

TEST(FaultPlan, AnyFaultKindMakesThePlanFaulted) {
  FaultPlan p1;
  p1.startup_failure_prob = 0.1;
  EXPECT_FALSE(p1.faultless());
  FaultPlan p2;
  p2.repack_failure_prob = 0.1;
  EXPECT_FALSE(p2.faultless());
  FaultPlan p3;
  p3.timeout_s = 30.0;
  EXPECT_FALSE(p3.faultless());
  FaultPlan p4;
  p4.crashes.push_back({0, 1.0, 2.0});
  EXPECT_FALSE(p4.faultless());
  // A retry policy alone does not inject anything.
  FaultPlan p5;
  p5.retry.max_attempts = 3;
  EXPECT_TRUE(p5.faultless());
}

TEST(FaultPlan, ValidateRejectsMalformedPlans) {
  FaultPlan bad_prob;
  bad_prob.startup_failure_prob = 1.5;
  EXPECT_THROW(bad_prob.validate(1), util::CheckError);

  FaultPlan bad_timeout;
  bad_timeout.timeout_s = 0.0;
  EXPECT_THROW(bad_timeout.validate(1), util::CheckError);

  FaultPlan no_attempts;
  no_attempts.retry.max_attempts = 0;
  EXPECT_THROW(no_attempts.validate(1), util::CheckError);

  FaultPlan inverted;
  inverted.crashes.push_back({0, 5.0, 4.0});
  EXPECT_THROW(inverted.validate(1), util::CheckError);

  FaultPlan unsorted;
  unsorted.crashes.push_back({0, 5.0, 6.0});
  unsorted.crashes.push_back({1, 1.0, 2.0});
  EXPECT_THROW(unsorted.validate(2), util::CheckError);

  FaultPlan overlapping;
  overlapping.crashes.push_back({0, 1.0, 5.0});
  overlapping.crashes.push_back({0, 3.0, 7.0});
  EXPECT_THROW(overlapping.validate(1), util::CheckError);

  FaultPlan outside;
  outside.crashes.push_back({4, 1.0, 2.0});
  EXPECT_THROW(outside.validate(2), util::CheckError);
  outside.validate(5);  // large enough fleet: fine
}

TEST(RetryPolicy, BackoffIsExponentialCappedAndJittered) {
  RetryPolicy retry;
  retry.base_backoff_s = 1.0;
  retry.backoff_multiplier = 2.0;
  retry.max_backoff_s = 5.0;
  retry.jitter_frac = 0.0;
  EXPECT_DOUBLE_EQ(retry.backoff_s(1, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(retry.backoff_s(2, 0.0), 2.0);
  EXPECT_DOUBLE_EQ(retry.backoff_s(3, 0.0), 4.0);
  EXPECT_DOUBLE_EQ(retry.backoff_s(4, 0.0), 5.0);  // capped
  retry.jitter_frac = 0.1;
  EXPECT_DOUBLE_EQ(retry.backoff_s(1, 0.5), 1.0 * 1.05);
  EXPECT_THROW(retry.backoff_s(0, 0.0), util::CheckError);
}

TEST(SampleCrashWindows, ProducesValidPlansAndRespectsTheCap) {
  util::Rng rng(7);
  const std::size_t nodes = 8;
  const std::size_t cap = 2;
  const auto windows =
      sample_crash_windows(nodes, 1000.0, 1.5, 30.0, cap, rng);
  FaultPlan plan;
  plan.crashes = windows;
  plan.validate(nodes);  // sorted, non-inverted, non-overlapping per node

  // At no down_at are more than `cap` windows simultaneously open.
  for (const CrashWindow& w : windows) {
    std::size_t down = 0;
    for (const CrashWindow& o : windows)
      if (o.down_at <= w.down_at && o.up_at > w.down_at) ++down;
    EXPECT_LE(down, cap);
  }
}

TEST(SampleCrashWindows, DeterministicForEqualStreams) {
  util::Rng a(99);
  util::Rng b(99);
  const auto wa = sample_crash_windows(4, 500.0, 2.0, 20.0, 1, a);
  const auto wb = sample_crash_windows(4, 500.0, 2.0, 20.0, 1, b);
  ASSERT_EQ(wa.size(), wb.size());
  for (std::size_t i = 0; i < wa.size(); ++i) {
    EXPECT_EQ(wa[i].node, wb[i].node);
    EXPECT_DOUBLE_EQ(wa[i].down_at, wb[i].down_at);
    EXPECT_DOUBLE_EQ(wa[i].up_at, wb[i].up_at);
  }
}

TEST(SampleCrashWindows, ZeroRateYieldsNoWindows) {
  util::Rng rng(1);
  EXPECT_TRUE(sample_crash_windows(4, 100.0, 0.0, 10.0, 1, rng).empty());
}

TEST(FaultInjector, DrawsMatchAnEqualStreamAndCount) {
  FaultPlan plan;
  plan.startup_failure_prob = 0.5;
  plan.repack_failure_prob = 0.25;
  plan.retry.max_attempts = 4;

  util::Rng parent_a(31337);
  util::Rng parent_b(31337);
  FaultInjector injector(plan, parent_a.split());
  util::Rng probe = parent_b.split();

  std::size_t startup_failures = 0;
  for (int i = 0; i < 64; ++i) {
    const bool expected = probe.bernoulli(plan.startup_failure_prob);
    EXPECT_EQ(injector.draw_startup_failure(), expected);
    if (expected) ++startup_failures;
  }
  EXPECT_EQ(injector.counters().startup_failures, startup_failures);

  const bool repack = probe.bernoulli(plan.repack_failure_prob);
  EXPECT_EQ(injector.draw_repack_failure(), repack);

  const double u = probe.uniform();
  EXPECT_DOUBLE_EQ(injector.draw_backoff(1), plan.retry.backoff_s(1, u));
  EXPECT_EQ(injector.counters().retries, 1U);
}

TEST(FaultInjector, RejectsMalformedPlans) {
  FaultPlan bad;
  bad.startup_failure_prob = -0.5;
  util::Rng parent(1);
  EXPECT_THROW(FaultInjector(bad, parent.split()), util::CheckError);
}

}  // namespace
}  // namespace mlcr::faults
