// Correlated failure domains (DESIGN.md §14): the zero-correlation
// migration oracle (an inert DomainPlan must reproduce sample_crash_windows
// bit-for-bit from the same stream), deterministic correlated sampling with
// domain/partial tagging, and the hardened validation diagnostics — every
// message must name the offending node and domain.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "faults/fault_plan.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace mlcr::faults {
namespace {

/// True when throwing `fn` produces a CheckError whose message contains
/// `needle` (the diagnostics validate/validate_domains promise).
template <typename Fn>
::testing::AssertionResult throws_mentioning(Fn fn, const std::string& needle) {
  try {
    fn();
  } catch (const util::CheckError& e) {
    if (std::string(e.what()).find(needle) != std::string::npos)
      return ::testing::AssertionSuccess();
    return ::testing::AssertionFailure()
           << "CheckError thrown but message lacks '" << needle
           << "': " << e.what();
  }
  return ::testing::AssertionFailure() << "no CheckError thrown";
}

/// Two racks over a 6-node fleet: {0,1,2} and {3,4,5}.
std::vector<FailureDomain> two_racks() {
  return {{0, {0, 1, 2}}, {1, {3, 4, 5}}};
}

TEST(FaultDomains, InertDomainPlanIsBitIdenticalToIndependentWindows) {
  // The migration oracle: a default DomainPlan — and one with domains but
  // zero event rate — must consume exactly the draws of
  // sample_crash_windows, producing the identical window list.
  for (const bool with_domains : {false, true}) {
    DomainPlan dp;
    if (with_domains) dp.domains = two_racks();
    ASSERT_TRUE(dp.inert());

    util::Rng independent_rng(777);
    util::Rng domain_rng(777);
    const auto independent = sample_crash_windows(
        6, 100.0, /*crashes_per_node=*/0.8, /*mean_downtime_s=*/6.0,
        /*max_concurrent_down=*/3, independent_rng);
    const auto domain = sample_domain_crash_windows(
        6, 100.0, /*crashes_per_node=*/0.8, /*mean_downtime_s=*/6.0,
        /*max_concurrent_down=*/3, dp, domain_rng);
    ASSERT_EQ(independent.size(), domain.size())
        << "with_domains=" << with_domains;
    for (std::size_t i = 0; i < independent.size(); ++i)
      EXPECT_TRUE(independent[i] == domain[i])
          << "window " << i << " diverges (with_domains=" << with_domains
          << ")";
    // And the stream position afterwards is identical too: the next draw
    // from both generators must agree.
    EXPECT_DOUBLE_EQ(independent_rng.uniform(), domain_rng.uniform());
  }
}

TEST(FaultDomains, CorrelatedSamplingIsDeterministicAndTagsDomains) {
  DomainPlan dp;
  dp.domains = two_racks();
  dp.correlation = 1.0;
  dp.crashes_per_domain = 2.0;
  dp.mean_downtime_s = 5.0;
  dp.partial_fraction = 1.0;
  ASSERT_FALSE(dp.inert());

  util::Rng rng_a(31);
  util::Rng rng_b(31);
  const auto a = sample_domain_crash_windows(6, 200.0, 0.2, 5.0, 5, dp,
                                             rng_a);
  const auto b = sample_domain_crash_windows(6, 200.0, 0.2, 5.0, 5, dp,
                                             rng_b);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_TRUE(a[i] == b[i]);

  // The sampled set must validate as part of a plan naming the domains.
  FaultPlan plan;
  plan.crashes = a;
  plan.domains = dp.domains;
  plan.validate(6);

  // Domain events exist at these rates, every one is partial (fraction 1),
  // and each group of windows sharing (domain, down_at) stays inside the
  // domain's membership.
  std::map<std::pair<std::size_t, double>, std::vector<std::size_t>> groups;
  for (const CrashWindow& w : a) {
    if (w.domain == kNoDomain) {
      EXPECT_FALSE(w.partial);  // independent windows are full crashes
      continue;
    }
    EXPECT_TRUE(w.partial);
    groups[{w.domain, w.down_at}].push_back(w.node);
  }
  ASSERT_FALSE(groups.empty());
  for (const auto& [key, members] : groups) {
    const FailureDomain& rack = dp.domains[key.first];
    for (const std::size_t node : members)
      EXPECT_TRUE(std::find(rack.nodes.begin(), rack.nodes.end(), node) !=
                  rack.nodes.end())
          << "node " << node << " outside domain " << key.first;
  }
}

TEST(FaultDomains, FullCorrelationCrashesWholeRacksTogether) {
  DomainPlan dp;
  dp.domains = two_racks();
  dp.correlation = 1.0;
  dp.crashes_per_domain = 1.5;
  dp.mean_downtime_s = 3.0;

  util::Rng rng(907);
  // No independent background: every window is a domain window, and with
  // correlation 1 every member participates — groups are whole racks unless
  // the overlap/concurrency sweep dropped a member's window.
  const auto windows = sample_domain_crash_windows(6, 300.0, 0.0, 3.0, 5, dp,
                                                   rng);
  ASSERT_FALSE(windows.empty());
  std::map<std::pair<std::size_t, double>, std::size_t> group_sizes;
  for (const CrashWindow& w : windows) {
    ASSERT_NE(w.domain, kNoDomain);
    ++group_sizes[{w.domain, w.down_at}];
  }
  std::size_t full_racks = 0;
  for (const auto& [key, count] : group_sizes) {
    EXPECT_LE(count, dp.domains[key.first].nodes.size());
    if (count == dp.domains[key.first].nodes.size()) ++full_racks;
  }
  EXPECT_GT(full_racks, 0U);
}

TEST(FaultDomains, ValidateDomainsNamesTheOffendingNodeAndDomain) {
  const auto validate = [](std::vector<FailureDomain> domains,
                           std::size_t nodes) {
    return [domains = std::move(domains), nodes] {
      validate_domains(domains, nodes);
    };
  };

  EXPECT_TRUE(throws_mentioning(
      validate({{1, {0}}, {1, {1}}}, 6), "failure domain 1 is declared twice"));
  EXPECT_TRUE(throws_mentioning(validate({{0, {}}}, 6),
                                "failure domain 0 has no member nodes"));
  EXPECT_TRUE(throws_mentioning(
      validate({{2, {7}}}, 6),
      "failure domain 2 names node 7 outside the fleet"));
  EXPECT_TRUE(throws_mentioning(
      validate({{0, {0, 1}}, {1, {1, 2}}}, 6),
      "node 1 belongs to failure domains 0 and 1"));
}

TEST(FaultDomains, DomainPlanValidateRejectsBadKnobs) {
  const auto check = [](void (*mutate)(DomainPlan&), const char* needle) {
    DomainPlan dp;
    dp.domains = two_racks();
    mutate(dp);
    return throws_mentioning([&] { dp.validate(6); }, needle);
  };

  EXPECT_TRUE(check([](DomainPlan& dp) { dp.correlation = 1.5; },
                    "domain correlation must be in [0, 1]"));
  EXPECT_TRUE(check([](DomainPlan& dp) { dp.partial_fraction = -0.1; },
                    "domain partial_fraction must be in [0, 1]"));
  EXPECT_TRUE(check([](DomainPlan& dp) { dp.crashes_per_domain = -1.0; },
                    "crashes_per_domain"));
  EXPECT_TRUE(check([](DomainPlan& dp) { dp.mean_downtime_s = 0.0; },
                    "mean_downtime"));
}

TEST(FaultDomains, PlanValidateNamesWindowsDomainsAndTimeouts) {
  // A window naming a domain nobody declared.
  FaultPlan unknown;
  unknown.domains = two_racks();
  unknown.crashes.push_back({0, 1.0, 2.0, false, 9});
  EXPECT_TRUE(throws_mentioning([&] { unknown.validate(6); },
                                "names unknown failure domain 9"));

  // A window claiming a domain its node does not belong to.
  FaultPlan non_member;
  non_member.domains = two_racks();
  non_member.crashes.push_back({5, 1.0, 2.0, false, 0});
  EXPECT_TRUE(throws_mentioning([&] { non_member.validate(6); },
                                "but the node is not a member"));

  // Overlapping windows name the domain that produced the later one.
  FaultPlan overlap;
  overlap.domains = two_racks();
  overlap.crashes.push_back({0, 1.0, 5.0, false, kNoDomain});
  overlap.crashes.push_back({0, 3.0, 7.0, false, 0});
  EXPECT_TRUE(throws_mentioning([&] { overlap.validate(6); },
                                "overlaps an earlier window on node 0"));

  // SLO timeout overrides: non-positive and duplicated entries.
  FaultPlan bad_timeout;
  bad_timeout.function_timeouts_s.push_back({2, 0.0});
  EXPECT_TRUE(throws_mentioning([&] { bad_timeout.validate(6); },
                                "per-function timeout 0 (function 2)"));
  FaultPlan dup_timeout;
  dup_timeout.function_timeouts_s.push_back({2, 1.0});
  dup_timeout.function_timeouts_s.push_back({2, 2.0});
  EXPECT_TRUE(throws_mentioning([&] { dup_timeout.validate(6); },
                                "function 2 has two timeout overrides"));
}

}  // namespace
}  // namespace mlcr::faults
