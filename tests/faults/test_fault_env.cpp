// Fault injection in the single-node simulator: bit-identity at zero
// faults, startup-failure retries, timeouts, repack failures, node
// crash/recovery, and the hardened offer() diagnostics.
#include <gtest/gtest.h>

#include <string>

#include "faults/injector.hpp"
#include "policies/baselines.hpp"
#include "policies/runner.hpp"
#include "testing/fixtures.hpp"
#include "util/check.hpp"

namespace mlcr {
namespace {

using testing::TinyWorld;

/// True when throwing `fn` produces a CheckError whose message contains
/// `needle` (the diagnostics the hardened offer()/validate_trace promise).
template <typename Fn>
::testing::AssertionResult throws_mentioning(Fn fn, const std::string& needle) {
  try {
    fn();
  } catch (const util::CheckError& e) {
    if (std::string(e.what()).find(needle) != std::string::npos)
      return ::testing::AssertionSuccess();
    return ::testing::AssertionFailure()
           << "CheckError thrown but message lacks '" << needle
           << "': " << e.what();
  }
  return ::testing::AssertionFailure() << "no CheckError thrown";
}

TEST(FaultEnv, FaultlessPlanIsBitIdenticalToNoInjector) {
  TinyWorld world;
  std::vector<sim::Invocation> invs;
  double t = 0.0;
  for (int r = 0; r < 6; ++r) {
    invs.push_back(TinyWorld::inv(world.fn_py_flask, t, 0.4));
    invs.push_back(TinyWorld::inv(world.fn_py_numpy, t + 2.0, 0.4));
    invs.push_back(TinyWorld::inv(world.fn_js, t + 4.0, 0.3));
    t += 10.0;
  }
  const sim::Trace trace(std::move(invs));

  auto plain_env = world.make_env();
  policies::GreedyMatchScheduler plain_sched;
  (void)policies::run_episode(plain_env, plain_sched, trace);

  auto faulted_env = world.make_env();
  util::Rng parent(1234);
  faults::FaultInjector injector(faults::FaultPlan{}, parent.split());
  faulted_env.set_fault_injector(&injector);
  policies::GreedyMatchScheduler faulted_sched;
  (void)policies::run_episode(faulted_env, faulted_sched, trace);

  // Exact (==) comparison: a faultless plan must not perturb a single bit.
  EXPECT_EQ(plain_env.metrics().latencies(), faulted_env.metrics().latencies());
  EXPECT_EQ(plain_env.metrics().cold_start_count(),
            faulted_env.metrics().cold_start_count());
  EXPECT_EQ(plain_env.metrics().total_latency_s(),
            faulted_env.metrics().total_latency_s());
  EXPECT_EQ(faulted_env.metrics().failed_count(), 0U);
  EXPECT_EQ(injector.counters().injected(), 0U);
}

TEST(FaultEnv, StartupFailureExhaustsRetriesAndFailsTheInvocation) {
  TinyWorld world;
  faults::FaultPlan plan;
  plan.startup_failure_prob = 1.0;
  plan.retry.max_attempts = 2;
  plan.retry.base_backoff_s = 0.5;
  plan.retry.jitter_frac = 0.0;  // deterministic latency arithmetic

  auto env = world.make_env();
  util::Rng parent(7);
  faults::FaultInjector injector(plan, parent.split());
  env.set_fault_injector(&injector);

  const sim::Trace trace =
      TinyWorld::make_trace({TinyWorld::inv(world.fn_py_flask, 0.0, 0.5)});
  env.reset(trace);
  const double cold_s =
      env.cost_model().cold_start(world.functions.get(world.fn_py_flask))
          .total();
  const sim::StepResult result = env.step(sim::Action::cold());

  EXPECT_TRUE(result.failed);
  EXPECT_EQ(result.attempts, 2U);
  EXPECT_EQ(result.container, containers::kInvalidContainer);
  // Two failed attempts plus one (jitter-free) backoff.
  EXPECT_DOUBLE_EQ(result.latency_s, 2.0 * cold_s + 0.5);

  const auto& m = env.metrics();
  EXPECT_EQ(m.failed_count(), 1U);
  EXPECT_EQ(m.retry_count(), 1U);
  EXPECT_EQ(m.cold_start_count(), 0U);  // failed records leave every bucket
  EXPECT_TRUE(m.latencies().empty());
  EXPECT_DOUBLE_EQ(m.latency_p99(), 0.0);
  EXPECT_DOUBLE_EQ(m.goodput(), 0.0);
  EXPECT_TRUE(env.pool().empty());  // nothing ever started

  EXPECT_EQ(injector.counters().startup_failures, 2U);
  EXPECT_EQ(injector.counters().retries, 1U);
  EXPECT_EQ(injector.counters().failed_invocations, 1U);
}

TEST(FaultEnv, RetriedOutcomesMatchAProbeOfTheSameStream) {
  TinyWorld world;
  faults::FaultPlan plan;
  plan.startup_failure_prob = 0.5;
  plan.retry.max_attempts = 3;

  auto env = world.make_env();
  util::Rng parent_a(4242);
  util::Rng parent_b(4242);
  faults::FaultInjector injector(plan, parent_a.split());
  util::Rng probe = parent_b.split();
  env.set_fault_injector(&injector);

  std::vector<sim::Invocation> invs;
  for (int i = 0; i < 20; ++i)
    invs.push_back(TinyWorld::inv(world.fn_py_flask, 10.0 * i, 0.1));
  const sim::Trace trace(std::move(invs));
  const double cold_s =
      env.cost_model().cold_start(world.functions.get(world.fn_py_flask))
          .total();

  env.reset(trace);
  while (!env.done()) {
    // Replay the documented draw order against a probe of an equal stream:
    // one Bernoulli per cold attempt, one jitter draw per backoff.
    double expected_latency = 0.0;
    std::size_t expected_attempts = 1;
    bool expected_failed = false;
    for (;;) {
      if (!probe.bernoulli(plan.startup_failure_prob)) {
        expected_latency += cold_s;
        break;
      }
      expected_latency += cold_s;
      if (expected_attempts >= plan.retry.max_attempts) {
        expected_failed = true;
        break;
      }
      expected_latency +=
          plan.retry.backoff_s(expected_attempts, probe.uniform());
      ++expected_attempts;
    }
    const sim::StepResult result = env.step(sim::Action::cold());
    EXPECT_EQ(result.failed, expected_failed);
    EXPECT_EQ(result.attempts, expected_attempts);
    EXPECT_DOUBLE_EQ(result.latency_s, expected_latency);
  }
  EXPECT_EQ(env.metrics().retry_count(), injector.counters().retries);
  EXPECT_EQ(env.metrics().failed_count(),
            injector.counters().failed_invocations);
}

TEST(FaultEnv, TimeoutKillsTheAttemptAtTheDeadline) {
  TinyWorld world;
  auto env = world.make_env();
  const double cold_s =
      env.cost_model().cold_start(world.functions.get(world.fn_py_flask))
          .total();
  faults::FaultPlan plan;
  plan.timeout_s = cold_s + 0.2;  // exec <= 0.2 s fits, longer blows it

  util::Rng parent(9);
  faults::FaultInjector injector(plan, parent.split());
  env.set_fault_injector(&injector);

  const sim::Trace trace = TinyWorld::make_trace(
      {TinyWorld::inv(world.fn_py_flask, 0.0, 0.1),     // fits the deadline
       TinyWorld::inv(world.fn_py_flask, 100.0, 5.0)});  // blows it
  env.reset(trace);
  const sim::StepResult ok = env.step(sim::Action::cold());
  EXPECT_FALSE(ok.failed);
  EXPECT_DOUBLE_EQ(ok.latency_s, cold_s);

  const sim::StepResult killed = env.step(sim::Action::cold());
  EXPECT_TRUE(killed.failed);
  EXPECT_EQ(killed.attempts, 1U);  // default policy: no retries
  EXPECT_DOUBLE_EQ(killed.latency_s, *plan.timeout_s);
  EXPECT_EQ(injector.counters().timeouts, 1U);
  EXPECT_EQ(env.metrics().failed_count(), 1U);
}

TEST(FaultEnv, RepackFailureDegradesToColdButL3IsExempt) {
  TinyWorld world;
  faults::FaultPlan plan;
  plan.repack_failure_prob = 1.0;

  auto env = world.make_env();
  util::Rng parent(11);
  faults::FaultInjector injector(plan, parent.split());
  env.set_fault_injector(&injector);

  const sim::Trace trace = TinyWorld::make_trace(
      {TinyWorld::inv(world.fn_py_flask, 0.0, 0.5),
       TinyWorld::inv(world.fn_py_numpy, 10.0, 0.5),
       TinyWorld::inv(world.fn_py_numpy, 20.0, 0.5)});
  env.reset(trace);

  const sim::StepResult first = env.step(sim::Action::cold());
  ASSERT_FALSE(first.failed);
  const containers::ContainerId parked = first.container;

  // L2 repack: the swap fails, the candidate dies, the start degrades to a
  // cold start that still pays the attempted swap's cleaner time.
  const auto& numpy = world.functions.get(world.fn_py_numpy);
  const double swap_s =
      env.cost_model().warm_start(numpy, containers::MatchLevel::kL2)
          .cleaner_s;
  const double cold_s = env.cost_model().cold_start(numpy).total();
  const sim::StepResult degraded = env.step(sim::Action::reuse(parked));
  EXPECT_TRUE(degraded.cold);
  EXPECT_EQ(degraded.match, containers::MatchLevel::kNoMatch);
  EXPECT_DOUBLE_EQ(degraded.latency_s, swap_s + cold_s);
  EXPECT_EQ(env.pool().find(parked), nullptr);  // candidate destroyed
  EXPECT_EQ(injector.counters().repack_failures, 1U);

  // L3 reuse swaps no volumes, so it cannot repack-fail even at prob 1.
  const sim::StepResult l3 = env.step(sim::Action::reuse(degraded.container));
  EXPECT_FALSE(l3.cold);
  EXPECT_EQ(l3.match, containers::MatchLevel::kL3);
  EXPECT_EQ(injector.counters().repack_failures, 1U);
}

TEST(FaultEnv, CrashKillsInFlightWorkAndRecoveryStartsCold) {
  TinyWorld world;
  auto env = world.make_env();
  util::Rng parent(13);
  faults::FaultPlan plan;
  plan.startup_failure_prob = 0.0;
  plan.crashes.push_back({0, 10.0, 30.0});  // documented in the plan only;
  faults::FaultInjector injector(plan, parent.split());
  env.set_fault_injector(&injector);  // the env is crashed explicitly here

  env.reset_streaming();
  env.offer(TinyWorld::inv(world.fn_py_flask, 0.0, 100.0));
  const sim::StepResult running = env.step(sim::Action::cold());
  ASSERT_FALSE(running.failed);
  ASSERT_EQ(env.busy_count(), 1U);

  env.crash(10.0);
  EXPECT_TRUE(env.down());
  EXPECT_EQ(env.busy_count(), 0U);  // in-flight execution killed
  EXPECT_TRUE(env.pool().empty());  // warm pool lost
  EXPECT_EQ(env.metrics().failed_count(), 1U);  // retroactively failed
  EXPECT_TRUE(env.metrics().latencies().empty());
  EXPECT_EQ(injector.counters().crashes, 1U);
  EXPECT_EQ(injector.counters().failed_invocations, 1U);

  // Down nodes reject work but their clock still advances across the
  // window (the fleet keeps idle nodes in lockstep).
  EXPECT_TRUE(throws_mentioning(
      [&] { env.offer(TinyWorld::inv(world.fn_py_flask, 15.0, 0.5)); },
      "crashed"));
  EXPECT_NO_THROW(env.advance_idle(20.0));
  EXPECT_THROW(env.crash(21.0), util::CheckError);  // already down

  env.recover(30.0);
  EXPECT_FALSE(env.down());
  EXPECT_EQ(injector.counters().recoveries, 1U);
  EXPECT_THROW(env.recover(31.0), util::CheckError);  // already healthy

  // The node rejoins with an empty pool: the next start is cold.
  env.offer(TinyWorld::inv(world.fn_py_flask, 40.0, 0.5));
  const sim::StepResult after = env.step(sim::Action::cold());
  EXPECT_TRUE(after.cold);
  EXPECT_FALSE(after.failed);
  env.finish_streaming();
  EXPECT_EQ(env.metrics().invocation_count(), 2U);
  EXPECT_DOUBLE_EQ(env.metrics().goodput(), 0.5);
}

TEST(FaultEnv, FinishStreamingDrainsOutstandingRetriedStarts) {
  TinyWorld world;
  faults::FaultPlan plan;
  plan.startup_failure_prob = 0.5;
  plan.retry.max_attempts = 3;

  auto env = world.make_env();
  util::Rng parent(17);
  faults::FaultInjector injector(plan, parent.split());
  env.set_fault_injector(&injector);

  env.reset_streaming();
  for (int i = 0; i < 16; ++i) {
    env.offer(TinyWorld::inv(world.fn_py_flask, 5.0 * i, 20.0));
    (void)env.step(sim::Action::cold());
  }
  // Several retried starts are still executing here; draining them must
  // keep every invariant (finish_streaming audits in checked builds).
  EXPECT_NO_THROW(env.finish_streaming());
  const auto& m = env.metrics();
  EXPECT_EQ(m.invocation_count(), 16U);
  EXPECT_EQ(m.latencies().size(), 16U - m.failed_count());
  EXPECT_EQ(m.retry_count(), injector.counters().retries);
  EXPECT_NO_THROW(env.audit());
}

TEST(FaultEnv, OfferDiagnosticsNameTheOffendingInvocation) {
  TinyWorld world;
  auto env = world.make_env();
  env.reset_streaming();

  sim::Invocation unknown = TinyWorld::inv(world.fn_py_flask, 0.0, 0.5);
  unknown.function = static_cast<sim::FunctionTypeId>(world.functions.size());
  unknown.seq = 7;
  EXPECT_TRUE(throws_mentioning([&] { env.offer(unknown); },
                                "unknown function"));
  EXPECT_TRUE(throws_mentioning([&] { env.offer(unknown); }, "seq 7"));

  env.offer(TinyWorld::inv(world.fn_py_flask, 5.0, 0.5));
  (void)env.step(sim::Action::cold());
  EXPECT_TRUE(throws_mentioning(
      [&] { env.offer(TinyWorld::inv(world.fn_py_flask, 1.0, 0.5)); },
      "arrival order"));
  EXPECT_TRUE(throws_mentioning(
      [&] { env.offer(TinyWorld::inv(world.fn_py_flask, 1.0, 0.5)); },
      "invocation 1"));
}

}  // namespace
}  // namespace mlcr
