// Subset / union operations on ImageSpec levels (the basis of union
// (zygote) reuse semantics).
#include <gtest/gtest.h>

#include "containers/image.hpp"

namespace mlcr::containers {
namespace {

class ImageSubsetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    os_ = catalog_.add("os", Level::kOs, 100.0);
    py_ = catalog_.add("python", Level::kLanguage, 50.0);
    flask_ = catalog_.add("flask", Level::kRuntime, 8.0);
    numpy_ = catalog_.add("numpy", Level::kRuntime, 30.0);
    pandas_ = catalog_.add("pandas", Level::kRuntime, 60.0);
  }
  PackageCatalog catalog_;
  PackageId os_{}, py_{}, flask_{}, numpy_{}, pandas_{};
};

TEST_F(ImageSubsetTest, ContainsIsSupersetSemantics) {
  const ImageSpec big({os_}, {py_}, {flask_, numpy_, pandas_});
  const ImageSpec small({os_}, {py_}, {flask_});
  EXPECT_TRUE(big.level_contains(small, Level::kRuntime));
  EXPECT_FALSE(small.level_contains(big, Level::kRuntime));
  EXPECT_TRUE(big.level_contains(big, Level::kRuntime));
}

TEST_F(ImageSubsetTest, EmptyRequirementAlwaysContained) {
  const ImageSpec any({os_}, {py_}, {flask_});
  const ImageSpec empty;
  EXPECT_TRUE(any.level_contains(empty, Level::kRuntime));
  EXPECT_TRUE(empty.level_contains(empty, Level::kRuntime));
  EXPECT_FALSE(empty.level_contains(any, Level::kRuntime));
}

TEST_F(ImageSubsetTest, MissingListsExactlyTheGap) {
  const ImageSpec have({os_}, {py_}, {flask_});
  const ImageSpec need({os_}, {py_}, {flask_, numpy_, pandas_});
  const auto missing = have.level_missing(need, Level::kRuntime);
  ASSERT_EQ(missing.size(), 2U);
  EXPECT_TRUE((missing == std::vector<PackageId>{numpy_, pandas_}) ||
              (missing == std::vector<PackageId>{pandas_, numpy_}));
  EXPECT_TRUE(need.level_missing(have, Level::kRuntime).empty());
}

TEST_F(ImageSubsetTest, MergeGrowsToUnion) {
  ImageSpec a({os_}, {py_}, {flask_});
  const ImageSpec b({os_}, {py_}, {numpy_, pandas_});
  a.merge_level(Level::kRuntime, b);
  EXPECT_EQ(a.level(Level::kRuntime).size(), 3U);
  EXPECT_TRUE(a.level_contains(b, Level::kRuntime));
  // Merging again is idempotent.
  a.merge_level(Level::kRuntime, b);
  EXPECT_EQ(a.level(Level::kRuntime).size(), 3U);
}

TEST_F(ImageSubsetTest, MergeLeavesOtherLevelsUntouched) {
  ImageSpec a({os_}, {py_}, {flask_});
  const ImageSpec b({os_}, {}, {numpy_});
  a.merge_level(Level::kRuntime, b);
  EXPECT_EQ(a.level(Level::kOs), std::vector<PackageId>{os_});
  EXPECT_EQ(a.level(Level::kLanguage), std::vector<PackageId>{py_});
}

}  // namespace
}  // namespace mlcr::containers
