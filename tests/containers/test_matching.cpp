// Table-I matching semantics, including a parameterized sweep over every
// (OS match?, language match?, runtime match?) combination.
#include "containers/matching.hpp"

#include <gtest/gtest.h>

#include <tuple>

namespace mlcr::containers {
namespace {

struct Fixture {
  PackageCatalog catalog;
  PackageId os_a, os_b, lang_a, lang_b, rt_a, rt_b;

  Fixture() {
    os_a = catalog.add("os-a", Level::kOs, 10.0);
    os_b = catalog.add("os-b", Level::kOs, 10.0);
    lang_a = catalog.add("lang-a", Level::kLanguage, 10.0);
    lang_b = catalog.add("lang-b", Level::kLanguage, 10.0);
    rt_a = catalog.add("rt-a", Level::kRuntime, 10.0);
    rt_b = catalog.add("rt-b", Level::kRuntime, 10.0);
  }
};

using Combo = std::tuple<bool, bool, bool>;  // os/lang/rt equal?

class MatchSweep : public ::testing::TestWithParam<Combo> {};

TEST_P(MatchSweep, TableOneSemantics) {
  const auto [os_eq, lang_eq, rt_eq] = GetParam();
  Fixture f;
  const ImageSpec fn({f.os_a}, {f.lang_a}, {f.rt_a});
  const ImageSpec cont({os_eq ? f.os_a : f.os_b},
                       {lang_eq ? f.lang_a : f.lang_b},
                       {rt_eq ? f.rt_a : f.rt_b});

  MatchLevel expected;
  if (!os_eq)
    expected = MatchLevel::kNoMatch;  // pruned regardless of L2/L3
  else if (!lang_eq)
    expected = MatchLevel::kL1;
  else if (!rt_eq)
    expected = MatchLevel::kL2;
  else
    expected = MatchLevel::kL3;

  EXPECT_EQ(match(fn, cont), expected);
}

INSTANTIATE_TEST_SUITE_P(AllCombos, MatchSweep,
                         ::testing::Combine(::testing::Bool(),
                                            ::testing::Bool(),
                                            ::testing::Bool()));

TEST(Matching, SubsetIsNotEqual) {
  Fixture f;
  // Container has an extra runtime package: Table I compares levels as
  // wholes, so this is only an L2 match, not L3.
  const ImageSpec fn({f.os_a}, {f.lang_a}, {f.rt_a});
  const ImageSpec cont({f.os_a}, {f.lang_a}, {f.rt_a, f.rt_b});
  EXPECT_EQ(match(fn, cont), MatchLevel::kL2);
}

TEST(Matching, EmptyRuntimeLevelsMatch) {
  Fixture f;
  const ImageSpec fn({f.os_a}, {f.lang_a}, {});
  const ImageSpec cont({f.os_a}, {f.lang_a}, {});
  EXPECT_EQ(match(fn, cont), MatchLevel::kL3);
}

TEST(Matching, ReusableAndProvisionCounts) {
  EXPECT_FALSE(reusable(MatchLevel::kNoMatch));
  EXPECT_TRUE(reusable(MatchLevel::kL1));
  EXPECT_TRUE(reusable(MatchLevel::kL3));
  EXPECT_EQ(levels_to_provision(MatchLevel::kNoMatch), 3);
  EXPECT_EQ(levels_to_provision(MatchLevel::kL1), 2);
  EXPECT_EQ(levels_to_provision(MatchLevel::kL2), 1);
  EXPECT_EQ(levels_to_provision(MatchLevel::kL3), 0);
}

TEST(Matching, LevelOrderingIsMeaningful) {
  EXPECT_LT(MatchLevel::kNoMatch, MatchLevel::kL1);
  EXPECT_LT(MatchLevel::kL1, MatchLevel::kL2);
  EXPECT_LT(MatchLevel::kL2, MatchLevel::kL3);
}

TEST(Matching, Names) {
  EXPECT_EQ(to_string(MatchLevel::kNoMatch), "no-match");
  EXPECT_EQ(to_string(MatchLevel::kL3), "L3");
}

}  // namespace
}  // namespace mlcr::containers
