#include "containers/package.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace mlcr::containers {
namespace {

TEST(PackageCatalog, AddAssignsDenseIds) {
  PackageCatalog c;
  EXPECT_EQ(c.add("alpine", Level::kOs, 8.0), 0U);
  EXPECT_EQ(c.add("python", Level::kLanguage, 50.0, 1.0), 1U);
  EXPECT_EQ(c.size(), 2U);
}

TEST(PackageCatalog, InfoRoundTrips) {
  PackageCatalog c;
  const PackageId id = c.add("flask", Level::kRuntime, 8.0, 0.3);
  const PackageInfo& info = c.info(id);
  EXPECT_EQ(info.name, "flask");
  EXPECT_EQ(info.level, Level::kRuntime);
  EXPECT_DOUBLE_EQ(info.size_mb, 8.0);
  EXPECT_DOUBLE_EQ(info.install_s, 0.3);
}

TEST(PackageCatalog, RejectsDuplicatesAndBadInput) {
  PackageCatalog c;
  (void)c.add("x", Level::kOs, 1.0);
  EXPECT_THROW((void)c.add("x", Level::kLanguage, 2.0), util::CheckError);
  EXPECT_THROW((void)c.add("", Level::kOs, 1.0), util::CheckError);
  EXPECT_THROW((void)c.add("y", Level::kOs, -1.0), util::CheckError);
  EXPECT_THROW((void)c.add("z", Level::kOs, 1.0, -0.1), util::CheckError);
}

TEST(PackageCatalog, FindAndRequire) {
  PackageCatalog c;
  const PackageId id = c.add("debian", Level::kOs, 120.0);
  EXPECT_EQ(c.find("debian"), id);
  EXPECT_EQ(c.find("missing"), std::nullopt);
  EXPECT_EQ(c.require("debian"), id);
  EXPECT_THROW((void)c.require("missing"), util::CheckError);
}

TEST(PackageCatalog, Totals) {
  PackageCatalog c;
  const auto a = c.add("a", Level::kOs, 10.0, 0.5);
  const auto b = c.add("b", Level::kRuntime, 30.0, 1.5);
  EXPECT_DOUBLE_EQ(c.total_size_mb({a, b}), 40.0);
  EXPECT_DOUBLE_EQ(c.total_install_s({a, b}), 2.0);
  EXPECT_DOUBLE_EQ(c.total_size_mb({}), 0.0);
}

TEST(PackageCatalog, InfoRejectsUnknownId) {
  PackageCatalog c;
  EXPECT_THROW((void)c.info(0), util::CheckError);
}

TEST(Level, Names) {
  EXPECT_EQ(to_string(Level::kOs), "OS");
  EXPECT_EQ(to_string(Level::kLanguage), "language");
  EXPECT_EQ(to_string(Level::kRuntime), "runtime");
}

}  // namespace
}  // namespace mlcr::containers
