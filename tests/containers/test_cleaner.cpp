#include "containers/cleaner.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace mlcr::containers {
namespace {

class CleanerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    os_ = catalog_.add("os", Level::kOs, 100.0);
    py_ = catalog_.add("python", Level::kLanguage, 50.0);
    node_ = catalog_.add("node", Level::kLanguage, 80.0);
    flask_ = catalog_.add("flask", Level::kRuntime, 8.0);
    numpy_ = catalog_.add("numpy", Level::kRuntime, 30.0);
  }

  Container make_container(ImageSpec image) {
    Container c;
    c.id = 1;
    c.image = std::move(image);
    c.refresh_memory(catalog_);
    return c;
  }

  PackageCatalog catalog_;
  ContainerCleaner cleaner_;
  PackageId os_{}, py_{}, node_{}, flask_{}, numpy_{};
};

TEST_F(CleanerTest, FullMatchSwapsOnlyUserDataVolume) {
  const ImageSpec fn({os_}, {py_}, {flask_});
  const RepackPlan p = cleaner_.plan(fn, MatchLevel::kL3);
  EXPECT_EQ(p.unmounted_volumes, 1);  // user-data volume only
  EXPECT_EQ(p.mounted_volumes, 1);
  EXPECT_GT(p.volume_ops_s, 0.0);
}

TEST_F(CleanerTest, L2SwapsRuntimeVolume) {
  const ImageSpec fn({os_}, {py_}, {numpy_});
  const RepackPlan p = cleaner_.plan(fn, MatchLevel::kL2);
  EXPECT_EQ(p.unmounted_volumes, 2);  // runtime + user data
  EXPECT_EQ(p.mounted_volumes, 2);
}

TEST_F(CleanerTest, L1SwapsLanguageAndRuntimeVolumes) {
  const ImageSpec fn({os_}, {node_}, {numpy_});
  const RepackPlan p = cleaner_.plan(fn, MatchLevel::kL1);
  EXPECT_EQ(p.unmounted_volumes, 3);  // language + runtime + user data
  EXPECT_EQ(p.mounted_volumes, 3);
}

TEST_F(CleanerTest, PlanRejectsNoMatch) {
  const ImageSpec fn({os_}, {py_}, {flask_});
  EXPECT_THROW((void)cleaner_.plan(fn, MatchLevel::kNoMatch),
               util::CheckError);
}

TEST_F(CleanerTest, RepackAtL1RewritesLanguageAndRuntime) {
  Container c = make_container(ImageSpec({os_}, {py_}, {flask_}));
  const double before_mb = c.memory_mb;
  const ImageSpec fn({os_}, {node_}, {numpy_});
  cleaner_.repack(c, fn, catalog_, MatchLevel::kL1);
  EXPECT_EQ(c.image, fn);
  EXPECT_EQ(c.repack_count, 1U);
  // node (80) + numpy (30) replaced python (50) + flask (8): +52 MB.
  EXPECT_DOUBLE_EQ(c.memory_mb, before_mb + 52.0);
}

TEST_F(CleanerTest, RepackAtL2KeepsLanguage) {
  Container c = make_container(ImageSpec({os_}, {py_}, {flask_}));
  const ImageSpec fn({os_}, {py_}, {numpy_});
  cleaner_.repack(c, fn, catalog_, MatchLevel::kL2);
  EXPECT_EQ(c.image.level(Level::kLanguage), std::vector<PackageId>{py_});
  EXPECT_EQ(c.image.level(Level::kRuntime), std::vector<PackageId>{numpy_});
}

TEST_F(CleanerTest, RepackAtL3IsIdentityOnImage) {
  Container c = make_container(ImageSpec({os_}, {py_}, {flask_}));
  const ImageSpec fn = c.image;
  cleaner_.repack(c, fn, catalog_, MatchLevel::kL3);
  EXPECT_EQ(c.image, fn);
  EXPECT_EQ(c.repack_count, 0U) << "identical image must not count a repack";
}

TEST_F(CleanerTest, VolumeOpsCostFollowsConfig) {
  CleanerConfig cfg;
  cfg.unmount_s = 0.01;
  cfg.mount_s = 0.02;
  cfg.swap_user_data_volume = false;
  const ContainerCleaner cleaner(cfg);
  const ImageSpec fn({os_}, {node_}, {numpy_});
  const RepackPlan p = cleaner.plan(fn, MatchLevel::kL1);
  EXPECT_EQ(p.unmounted_volumes, 2);
  EXPECT_DOUBLE_EQ(p.volume_ops_s, 2 * 0.01 + 2 * 0.02);
}

TEST_F(CleanerTest, ContainerMemoryIncludesBaseOverhead) {
  const Container c = make_container(ImageSpec({os_}, {py_}, {flask_}));
  EXPECT_DOUBLE_EQ(c.memory_mb, Container::kBaseOverheadMb + 158.0);
}

}  // namespace
}  // namespace mlcr::containers
