#include "containers/pool.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace mlcr::containers {
namespace {

Container make_container(ContainerId id, double memory_mb, double idle_at,
                         FunctionTypeId fn = 0, double cost_s = 1.0) {
  Container c;
  c.id = id;
  c.state = ContainerState::kIdle;
  c.last_idle_at = idle_at;
  c.memory_mb = memory_mb;
  c.last_function = fn;
  c.last_startup_cost_s = cost_s;
  return c;
}

WarmPool make_lru_pool(double capacity, std::size_t max_count = 0) {
  return WarmPool(capacity, std::make_unique<LruEviction>(), max_count);
}

TEST(WarmPool, AdmitAndTake) {
  WarmPool pool = make_lru_pool(1000.0);
  EXPECT_EQ(pool.admit(make_container(1, 100.0, 0.0), 0.0),
            WarmPool::AdmitOutcome::kAdmitted);
  EXPECT_EQ(pool.size(), 1U);
  EXPECT_DOUBLE_EQ(pool.used_mb(), 100.0);
  auto taken = pool.take(1, 1.0);
  ASSERT_TRUE(taken.has_value());
  EXPECT_EQ(taken->id, 1U);
  EXPECT_TRUE(pool.empty());
  EXPECT_DOUBLE_EQ(pool.used_mb(), 0.0);
}

TEST(WarmPool, TakeUnknownReturnsNullopt) {
  WarmPool pool = make_lru_pool(1000.0);
  EXPECT_EQ(pool.take(99, 0.0), std::nullopt);
}

TEST(WarmPool, LruEvictsOldestIdle) {
  WarmPool pool = make_lru_pool(250.0);
  (void)pool.admit(make_container(1, 100.0, 1.0), 1.0);
  (void)pool.admit(make_container(2, 100.0, 2.0), 2.0);
  // Needs 100 MB; container 1 (oldest idle) must go.
  EXPECT_EQ(pool.admit(make_container(3, 100.0, 3.0), 3.0),
            WarmPool::AdmitOutcome::kAdmitted);
  EXPECT_EQ(pool.find(1), nullptr);
  EXPECT_NE(pool.find(2), nullptr);
  EXPECT_NE(pool.find(3), nullptr);
  EXPECT_EQ(pool.eviction_count(), 1U);
}

TEST(WarmPool, EvictsAsManyAsNeeded) {
  WarmPool pool = make_lru_pool(300.0);
  (void)pool.admit(make_container(1, 100.0, 1.0), 1.0);
  (void)pool.admit(make_container(2, 100.0, 2.0), 2.0);
  (void)pool.admit(make_container(3, 100.0, 3.0), 3.0);
  // 250 MB into a 300 MB pool holding 3x100 MB: LRU evicts 1, then 2, then 3
  // (100 + 250 and 200 + 250 both still exceed capacity).
  EXPECT_EQ(pool.admit(make_container(4, 250.0, 4.0), 4.0),
            WarmPool::AdmitOutcome::kAdmitted);
  EXPECT_EQ(pool.size(), 1U);
  EXPECT_NE(pool.find(4), nullptr);
  EXPECT_EQ(pool.eviction_count(), 3U);
}

TEST(WarmPool, OversizedContainerRejected) {
  WarmPool pool = make_lru_pool(100.0);
  EXPECT_EQ(pool.admit(make_container(1, 200.0, 0.0), 0.0),
            WarmPool::AdmitOutcome::kRejected);
  EXPECT_EQ(pool.rejection_count(), 1U);
}

TEST(WarmPool, RejectWhenFullPolicyRejectsInsteadOfEvicting) {
  WarmPool pool(150.0, std::make_unique<RejectWhenFull>());
  (void)pool.admit(make_container(1, 100.0, 0.0), 0.0);
  EXPECT_EQ(pool.admit(make_container(2, 100.0, 1.0), 1.0),
            WarmPool::AdmitOutcome::kRejected);
  EXPECT_NE(pool.find(1), nullptr);
  EXPECT_EQ(pool.eviction_count(), 0U);
  EXPECT_EQ(pool.rejection_count(), 1U);
}

TEST(WarmPool, CountCapTriggersEviction) {
  WarmPool pool = make_lru_pool(10'000.0, /*max_count=*/2);
  (void)pool.admit(make_container(1, 10.0, 1.0), 1.0);
  (void)pool.admit(make_container(2, 10.0, 2.0), 2.0);
  (void)pool.admit(make_container(3, 10.0, 3.0), 3.0);
  EXPECT_EQ(pool.size(), 2U);
  EXPECT_EQ(pool.find(1), nullptr);
}

TEST(WarmPool, DuplicateAdmitIsAnError) {
  WarmPool pool = make_lru_pool(1000.0);
  (void)pool.admit(make_container(1, 10.0, 0.0), 0.0);
  EXPECT_THROW((void)pool.admit(make_container(1, 10.0, 1.0), 1.0),
               util::CheckError);
}

TEST(WarmPool, AdmitRequiresIdleState) {
  WarmPool pool = make_lru_pool(1000.0);
  Container busy = make_container(1, 10.0, 0.0);
  busy.state = ContainerState::kBusy;
  EXPECT_THROW((void)pool.admit(std::move(busy), 0.0), util::CheckError);
}

TEST(WarmPool, IdleContainersSortedByRecency) {
  WarmPool pool = make_lru_pool(1000.0);
  (void)pool.admit(make_container(3, 10.0, 5.0), 5.0);
  (void)pool.admit(make_container(1, 10.0, 2.0), 5.0);
  (void)pool.admit(make_container(2, 10.0, 9.0), 9.0);
  const auto idle = pool.idle_containers();
  ASSERT_EQ(idle.size(), 3U);
  EXPECT_EQ(idle[0]->id, 1U);
  EXPECT_EQ(idle[1]->id, 3U);
  EXPECT_EQ(idle[2]->id, 2U);
}

TEST(WarmPool, ExpireOlderThanRemovesStale) {
  WarmPool pool = make_lru_pool(1000.0);
  (void)pool.admit(make_container(1, 10.0, 0.0), 0.0);
  (void)pool.admit(make_container(2, 10.0, 50.0), 50.0);
  EXPECT_EQ(pool.expire_older_than(100.0, 60.0), 1U);
  EXPECT_EQ(pool.find(1), nullptr);
  EXPECT_NE(pool.find(2), nullptr);
  EXPECT_EQ(pool.eviction_count(), 1U);
}

TEST(WarmPool, PeakUsageTracksHighWaterMark) {
  WarmPool pool = make_lru_pool(1000.0);
  (void)pool.admit(make_container(1, 400.0, 0.0), 0.0);
  (void)pool.admit(make_container(2, 500.0, 1.0), 1.0);
  (void)pool.take(1, 2.0);
  EXPECT_DOUBLE_EQ(pool.used_mb(), 500.0);
  EXPECT_DOUBLE_EQ(pool.peak_used_mb(), 900.0);
}

TEST(FaasCache, EvictsMinimumPriority) {
  WarmPool pool(250.0, std::make_unique<FaasCacheEviction>());
  // fn 0 admitted twice (frequency 2) with high cost; fn 1 cheap & rare.
  (void)pool.admit(make_container(1, 100.0, 1.0, /*fn=*/0, /*cost=*/10.0), 1.0);
  (void)pool.admit(make_container(2, 100.0, 2.0, /*fn=*/1, /*cost=*/0.1), 2.0);
  // Admitting 3 (fn 0 again) needs an eviction: container 2 has the lowest
  // greedy-dual priority (cheap, infrequent) even though 1 is older.
  (void)pool.admit(make_container(3, 100.0, 3.0, /*fn=*/0, /*cost=*/10.0), 3.0);
  EXPECT_EQ(pool.find(2), nullptr);
  EXPECT_NE(pool.find(1), nullptr);
}

TEST(FaasCache, ClockAdvancesWithEvictions) {
  auto policy = std::make_unique<FaasCacheEviction>();
  FaasCacheEviction* raw = policy.get();
  WarmPool pool(150.0, std::move(policy));
  (void)pool.admit(make_container(1, 100.0, 1.0, 0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(raw->clock(), 0.0);
  (void)pool.admit(make_container(2, 100.0, 2.0, 0, 1.0), 2.0);
  EXPECT_GT(raw->clock(), 0.0);
}

// Property sweep: the capacity invariant (used <= capacity) and non-negative
// accounting hold under arbitrary admit/take sequences.
class PoolProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PoolProperty, CapacityInvariantUnderRandomOperations) {
  util::Rng rng(GetParam());
  WarmPool pool = make_lru_pool(500.0);
  std::vector<ContainerId> inside;
  ContainerId next_id = 0;
  for (int step = 0; step < 400; ++step) {
    if (inside.empty() || rng.bernoulli(0.6)) {
      Container c = make_container(next_id++, rng.uniform(10.0, 220.0),
                                   static_cast<double>(step));
      const ContainerId id = c.id;
      if (pool.admit(std::move(c), static_cast<double>(step)) ==
          WarmPool::AdmitOutcome::kAdmitted)
        inside.push_back(id);
    } else {
      const std::size_t pick = rng.uniform_index(inside.size());
      (void)pool.take(inside[pick], static_cast<double>(step));
      inside.erase(inside.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    // Evictions may have removed ids we still track; prune them.
    std::erase_if(inside,
                  [&](ContainerId id) { return pool.find(id) == nullptr; });
    EXPECT_LE(pool.used_mb(), pool.capacity_mb() + 1e-9);
    EXPECT_GE(pool.used_mb(), -1e-9);
    EXPECT_EQ(pool.size(), inside.size());
    EXPECT_LE(pool.used_mb(), pool.peak_used_mb() + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PoolProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 99, 123, 999));

}  // namespace
}  // namespace mlcr::containers
