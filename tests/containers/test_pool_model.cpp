// Model-based testing: WarmPool with LRU eviction against a deliberately
// naive reference implementation, under long random operation sequences.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "containers/pool.hpp"
#include "util/rng.hpp"

namespace mlcr::containers {
namespace {

/// Reference model: a sorted vector of (id, memory, idle_at). Mirrors the
/// documented WarmPool semantics with the simplest possible code.
class ReferencePool {
 public:
  explicit ReferencePool(double capacity) : capacity_(capacity) {}

  bool admit(ContainerId id, double memory, double idle_at) {
    if (memory > capacity_) return false;
    while (used() + memory > capacity_) {
      // Evict oldest idle (ties: smallest id).
      auto victim = entries_.begin();
      for (auto it = entries_.begin(); it != entries_.end(); ++it)
        if (it->idle_at < victim->idle_at ||
            (it->idle_at == victim->idle_at && it->id < victim->id))
          victim = it;
      entries_.erase(victim);
      ++evictions_;
    }
    entries_.push_back({id, memory, idle_at});
    return true;
  }

  bool take(ContainerId id) {
    const auto it =
        std::find_if(entries_.begin(), entries_.end(),
                     [&](const Entry& e) { return e.id == id; });
    if (it == entries_.end()) return false;
    entries_.erase(it);
    return true;
  }

  [[nodiscard]] double used() const {
    double total = 0.0;
    for (const Entry& e : entries_) total += e.memory;
    return total;
  }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::size_t evictions() const { return evictions_; }
  [[nodiscard]] std::vector<ContainerId> ids() const {
    std::vector<ContainerId> out;
    for (const Entry& e : entries_) out.push_back(e.id);
    std::sort(out.begin(), out.end());
    return out;
  }

 private:
  struct Entry {
    ContainerId id;
    double memory;
    double idle_at;
  };
  double capacity_;
  std::vector<Entry> entries_;
  std::size_t evictions_ = 0;
};

class PoolModelTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PoolModelTest, MatchesReferenceUnderRandomOperations) {
  util::Rng rng(GetParam());
  constexpr double kCapacity = 600.0;
  WarmPool pool(kCapacity, std::make_unique<LruEviction>());
  ReferencePool reference(kCapacity);

  ContainerId next_id = 0;
  for (int step = 0; step < 600; ++step) {
    const double now = static_cast<double>(step);
    if (rng.bernoulli(0.65)) {
      Container c;
      c.id = next_id++;
      c.state = ContainerState::kIdle;
      c.memory_mb = rng.uniform(20.0, 250.0);
      c.last_idle_at = now;
      const bool ref_admitted = reference.admit(c.id, c.memory_mb, now);
      const bool pool_admitted =
          pool.admit(std::move(c), now) == WarmPool::AdmitOutcome::kAdmitted;
      ASSERT_EQ(pool_admitted, ref_admitted) << "step " << step;
    } else {
      const auto ids = reference.ids();
      // Try a present id half the time, an absent one otherwise.
      const ContainerId target =
          (!ids.empty() && rng.bernoulli(0.5))
              ? ids[rng.uniform_index(ids.size())]
              : next_id + 1000;
      const bool ref_took = reference.take(target);
      const bool pool_took = pool.take(target, now).has_value();
      ASSERT_EQ(pool_took, ref_took) << "step " << step;
    }
    ASSERT_EQ(pool.size(), reference.size()) << "step " << step;
    ASSERT_NEAR(pool.used_mb(), reference.used(), 1e-6) << "step " << step;
    ASSERT_EQ(pool.eviction_count(), reference.evictions()) << "step " << step;
    // Same membership.
    auto pool_ids = [&] {
      std::vector<ContainerId> out;
      for (const Container* c : pool.idle_containers()) out.push_back(c->id);
      std::sort(out.begin(), out.end());
      return out;
    }();
    ASSERT_EQ(pool_ids, reference.ids()) << "step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PoolModelTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace
}  // namespace mlcr::containers
