#include "containers/dockerfile.hpp"

#include <gtest/gtest.h>

namespace mlcr::containers {
namespace {

// The paper's Fig. 5 Dockerfile (deep-learning application).
constexpr const char* kFig5Dockerfile = R"(
FROM ubuntu:20.04
RUN apt update && \
    apt install -y wget build-essential
RUN cd /tmp && \
    wget https://www.python.org/ftp/python/3.9.17/Python-3.9.17.tgz && \
    tar -xvf Python-3.9.17.tgz && \
    cd Python-3.9.17 && \
    ./configure --enable-optimizations && \
    make && make install
RUN pip install torch==2.0.1+cpu torchvision==0.15.2+cpu
WORKDIR /workspace
)";

TEST(Dockerfile, ClassifiesThePaperFigureFiveExample) {
  const DockerfileClassifier classifier;
  const DockerfileAnalysis a = classifier.classify(kFig5Dockerfile);

  EXPECT_EQ(a.base_image, "ubuntu:20.04");
  ASSERT_EQ(a.os_packages.size(), 1U);
  EXPECT_EQ(a.os_packages[0], "ubuntu:20.04");

  // Source-built Python 3.9 is a language-level package (paper: orange).
  ASSERT_EQ(a.language_packages.size(), 1U);
  EXPECT_EQ(a.language_packages[0], "python-3.9");

  // torch + torchvision are runtime-level (paper: green); the apt helpers
  // (wget, build-essential) land in runtime too — they are not languages.
  EXPECT_NE(std::find(a.runtime_packages.begin(), a.runtime_packages.end(),
                      "torch"),
            a.runtime_packages.end());
  EXPECT_NE(std::find(a.runtime_packages.begin(), a.runtime_packages.end(),
                      "torchvision"),
            a.runtime_packages.end());
}

TEST(Dockerfile, AptInstallSplitsLanguagesFromRuntime) {
  const DockerfileClassifier classifier;
  const auto a = classifier.classify(
      "FROM debian:11\nRUN apt-get install -y python3 curl libssl-dev\n");
  ASSERT_EQ(a.language_packages.size(), 1U);
  EXPECT_EQ(a.language_packages[0], "python3");
  EXPECT_EQ(a.runtime_packages,
            (std::vector<std::string>{"curl", "libssl-dev"}));
}

TEST(Dockerfile, ApkAddAndNpmInstall) {
  const DockerfileClassifier classifier;
  const auto a = classifier.classify(
      "FROM alpine:3.18\n"
      "RUN apk add nodejs npm\n"
      "RUN npm install express body-parser\n");
  EXPECT_EQ(a.language_packages,
            (std::vector<std::string>{"nodejs", "npm"}));
  EXPECT_EQ(a.runtime_packages,
            (std::vector<std::string>{"express", "body-parser"}));
}

TEST(Dockerfile, VersionedAptPackagesMatchVocabulary) {
  const DockerfileClassifier classifier;
  const auto a = classifier.classify(
      "FROM ubuntu:22.04\nRUN apt install -y openjdk-17-jdk maven\n");
  EXPECT_EQ(a.language_packages,
            (std::vector<std::string>{"openjdk-17-jdk"}));
  EXPECT_EQ(a.runtime_packages, (std::vector<std::string>{"maven"}));
}

TEST(Dockerfile, IgnoresNonPackageDirectivesAndComments) {
  const DockerfileClassifier classifier;
  const auto a = classifier.classify(
      "# build stage\n"
      "FROM busybox\n"
      "ENV DEBIAN_FRONTEND=noninteractive\n"
      "WORKDIR /app\n"
      "COPY . /app\n"
      "RUN apt update && apt upgrade -y\n"  // no install verb: no packages
      "CMD [\"/app/run\"]\n");
  EXPECT_EQ(a.base_image, "busybox");
  EXPECT_TRUE(a.language_packages.empty());
  EXPECT_TRUE(a.runtime_packages.empty());
}

TEST(Dockerfile, DeduplicatesRepeatedInstalls) {
  const DockerfileClassifier classifier;
  const auto a = classifier.classify(
      "FROM alpine\nRUN pip install flask\nRUN pip install flask numpy\n");
  EXPECT_EQ(a.runtime_packages,
            (std::vector<std::string>{"flask", "numpy"}));
}

TEST(Dockerfile, CustomLanguageVocabulary) {
  DockerfileClassifier classifier;
  classifier.add_language_package("zig");
  const auto a =
      classifier.classify("FROM alpine\nRUN apk add zig cowsay\n");
  EXPECT_EQ(a.language_packages, (std::vector<std::string>{"zig"}));
  EXPECT_EQ(a.runtime_packages, (std::vector<std::string>{"cowsay"}));
}

TEST(Dockerfile, StripVersionVariants) {
  EXPECT_EQ(strip_version("torch==2.0.1+cpu"), "torch");
  EXPECT_EQ(strip_version("flask>=2"), "flask");
  EXPECT_EQ(strip_version("pkg=1.2-r0"), "pkg");
  EXPECT_EQ(strip_version("plain"), "plain");
}

TEST(Dockerfile, ResolveAgainstCatalog) {
  PackageCatalog catalog;
  const PackageId ubuntu = catalog.add("ubuntu:20.04", Level::kOs, 100.0);
  const PackageId python = catalog.add("python-3.9", Level::kLanguage, 50.0);
  const PackageId torch = catalog.add("torch", Level::kRuntime, 400.0);

  const DockerfileClassifier classifier;
  const auto analysis = classifier.classify(kFig5Dockerfile);
  const auto res = analysis.resolve(catalog);
  EXPECT_EQ(res.image.level(Level::kOs), std::vector<PackageId>{ubuntu});
  EXPECT_EQ(res.image.level(Level::kLanguage),
            std::vector<PackageId>{python});
  EXPECT_EQ(res.image.level(Level::kRuntime), std::vector<PackageId>{torch});
  // torchvision, wget, build-essential are not in this catalog.
  EXPECT_EQ(res.unknown.size(), 3U);
}

TEST(Dockerfile, EmptyInput) {
  const DockerfileClassifier classifier;
  const auto a = classifier.classify("");
  EXPECT_TRUE(a.base_image.empty());
  EXPECT_TRUE(a.os_packages.empty());
}

}  // namespace
}  // namespace mlcr::containers
