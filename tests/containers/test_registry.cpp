#include "containers/registry.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace mlcr::containers {
namespace {

PackageCatalog make_catalog() {
  PackageCatalog c;
  for (int i = 0; i < 8; ++i)
    (void)c.add("os-" + std::to_string(i), Level::kOs, 50.0);
  for (int i = 0; i < 10; ++i)
    (void)c.add("lang-" + std::to_string(i), Level::kLanguage, 40.0);
  for (int i = 0; i < 30; ++i)
    (void)c.add("rt-" + std::to_string(i), Level::kRuntime, 10.0);
  return c;
}

TEST(Registry, BuildsRequestedImageCount) {
  const PackageCatalog catalog = make_catalog();
  RegistryConfig cfg;
  cfg.num_images = 200;
  const SyntheticRegistry reg(catalog, cfg, util::Rng(1));
  EXPECT_EQ(reg.images().size(), 200U);
  for (const auto& img : reg.images()) {
    EXPECT_EQ(img.image.level(Level::kOs).size(), 1U);
    EXPECT_EQ(img.image.level(Level::kLanguage).size(), 1U);
  }
}

TEST(Registry, PopularitySharesSumToOne) {
  const PackageCatalog catalog = make_catalog();
  const SyntheticRegistry reg(catalog, RegistryConfig{}, util::Rng(7));
  double total = 0.0;
  for (const auto& p : reg.popularity(Level::kOs)) total += p.share;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Registry, PopularityIsSortedDescending) {
  const PackageCatalog catalog = make_catalog();
  const SyntheticRegistry reg(catalog, RegistryConfig{}, util::Rng(7));
  const auto pop = reg.popularity(Level::kLanguage);
  for (std::size_t i = 1; i < pop.size(); ++i)
    EXPECT_GE(pop[i - 1].pull_count, pop[i].pull_count);
}

TEST(Registry, TopKShareIsMonotoneInK) {
  const PackageCatalog catalog = make_catalog();
  const SyntheticRegistry reg(catalog, RegistryConfig{}, util::Rng(7));
  double prev = 0.0;
  for (std::size_t k = 1; k <= 8; ++k) {
    const double s = reg.top_k_share(Level::kOs, k);
    EXPECT_GE(s, prev);
    EXPECT_LE(s, 1.0 + 1e-9);
    prev = s;
  }
}

TEST(Registry, FewBaseImagesDominate) {
  // The paper's Fig. 3 observation: top-4 base images take the lion's share.
  const PackageCatalog catalog = make_catalog();
  const SyntheticRegistry reg(catalog, RegistryConfig{}, util::Rng(7));
  EXPECT_GT(reg.top_k_share(Level::kOs, 4), 0.6);
}

TEST(Registry, DeterministicGivenSeed) {
  const PackageCatalog catalog = make_catalog();
  const SyntheticRegistry a(catalog, RegistryConfig{}, util::Rng(42));
  const SyntheticRegistry b(catalog, RegistryConfig{}, util::Rng(42));
  ASSERT_EQ(a.images().size(), b.images().size());
  for (std::size_t i = 0; i < a.images().size(); ++i) {
    EXPECT_EQ(a.images()[i].pull_count, b.images()[i].pull_count);
    EXPECT_TRUE(a.images()[i].image == b.images()[i].image);
  }
}

TEST(Registry, RequiresOsAndLanguagePackages) {
  PackageCatalog only_rt;
  (void)only_rt.add("rt", Level::kRuntime, 1.0);
  EXPECT_THROW(SyntheticRegistry(only_rt, RegistryConfig{}, util::Rng(1)),
               util::CheckError);
}

}  // namespace
}  // namespace mlcr::containers
