#include "containers/image.hpp"

#include <gtest/gtest.h>

namespace mlcr::containers {
namespace {

class ImageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    os_ = catalog_.add("os", Level::kOs, 100.0);
    py_ = catalog_.add("python", Level::kLanguage, 50.0);
    node_ = catalog_.add("node", Level::kLanguage, 80.0);
    flask_ = catalog_.add("flask", Level::kRuntime, 8.0);
    numpy_ = catalog_.add("numpy", Level::kRuntime, 30.0);
  }
  PackageCatalog catalog_;
  PackageId os_{}, py_{}, node_{}, flask_{}, numpy_{};
};

TEST_F(ImageTest, NormalizesSortedDeduplicated) {
  const ImageSpec img({os_}, {py_}, {numpy_, flask_, numpy_});
  const auto& rt = img.level(Level::kRuntime);
  ASSERT_EQ(rt.size(), 2U);
  EXPECT_LT(rt[0], rt[1]);
}

TEST_F(ImageTest, LevelEqualityIsSetEquality) {
  const ImageSpec a({os_}, {py_}, {flask_, numpy_});
  const ImageSpec b({os_}, {py_}, {numpy_, flask_});
  EXPECT_TRUE(a.level_equals(b, Level::kRuntime));
  EXPECT_TRUE(a == b);
}

TEST_F(ImageTest, TotalAndLevelSizes) {
  const ImageSpec img({os_}, {py_}, {flask_, numpy_});
  EXPECT_DOUBLE_EQ(img.total_size_mb(catalog_), 188.0);
  EXPECT_DOUBLE_EQ(img.level_size_mb(catalog_, Level::kOs), 100.0);
  EXPECT_DOUBLE_EQ(img.level_size_mb(catalog_, Level::kRuntime), 38.0);
}

TEST_F(ImageTest, SetLevelReplacesAndNormalizes) {
  ImageSpec img({os_}, {py_}, {flask_});
  img.set_level(Level::kRuntime, {numpy_, numpy_});
  EXPECT_EQ(img.level(Level::kRuntime), std::vector<PackageId>{numpy_});
  EXPECT_EQ(img.level(Level::kLanguage), std::vector<PackageId>{py_});
}

TEST_F(ImageTest, AllPackagesAndCount) {
  const ImageSpec img({os_}, {py_}, {flask_, numpy_});
  EXPECT_EQ(img.package_count(), 4U);
  EXPECT_EQ(img.all_packages().size(), 4U);
}

TEST_F(ImageTest, JaccardIdenticalIsOne) {
  const ImageSpec a({os_}, {py_}, {flask_});
  EXPECT_DOUBLE_EQ(a.jaccard(a), 1.0);
}

TEST_F(ImageTest, JaccardPartialOverlap) {
  const ImageSpec a({os_}, {py_}, {flask_});
  const ImageSpec b({os_}, {py_}, {numpy_});
  // shared: os, py; union: os, py, flask, numpy.
  EXPECT_DOUBLE_EQ(a.jaccard(b), 2.0 / 4.0);
}

TEST_F(ImageTest, JaccardDisjointIsZero) {
  const ImageSpec a({os_}, {}, {});
  const ImageSpec b({}, {py_}, {});
  EXPECT_DOUBLE_EQ(a.jaccard(b), 0.0);
}

TEST_F(ImageTest, JaccardEmptyImagesIsOne) {
  const ImageSpec a, b;
  EXPECT_DOUBLE_EQ(a.jaccard(b), 1.0);
}

}  // namespace
}  // namespace mlcr::containers
