#include "fstartbench/workloads.hpp"

#include <gtest/gtest.h>

#include <set>

#include "util/check.hpp"

namespace mlcr::fstartbench {
namespace {

class WorkloadTest : public ::testing::Test {
 protected:
  Benchmark bench_ = make_benchmark();
};

TEST_F(WorkloadTest, PoissonMixProducesRequestedCounts) {
  util::Rng rng(1);
  const auto types = bench_.paper_ids({1, 2, 5});
  const sim::Trace trace = make_poisson_mix(bench_, types, 20, 0.5, rng);
  EXPECT_EQ(trace.size(), 60U);
  std::set<sim::FunctionTypeId> seen;
  for (const auto& inv : trace.invocations()) {
    seen.insert(inv.function);
    EXPECT_GT(inv.exec_s, 0.0);
  }
  EXPECT_EQ(seen.size(), 3U);
}

TEST_F(WorkloadTest, OverallWorkloadUsesAllThirteenTypes) {
  util::Rng rng(2);
  const sim::Trace trace = make_overall_workload(bench_, 400, rng);
  EXPECT_EQ(trace.size(), 400U);
  std::set<sim::FunctionTypeId> seen;
  for (const auto& inv : trace.invocations()) seen.insert(inv.function);
  EXPECT_EQ(seen.size(), 13U) << "every type contributes at least one";
}

TEST_F(WorkloadTest, WorkloadsAreDeterministicGivenSeed) {
  util::Rng a(7), b(7);
  const sim::Trace ta = make_overall_workload(bench_, 100, a);
  const sim::Trace tb = make_overall_workload(bench_, 100, b);
  ASSERT_EQ(ta.size(), tb.size());
  for (std::size_t i = 0; i < ta.size(); ++i) {
    EXPECT_EQ(ta.at(i).function, tb.at(i).function);
    EXPECT_DOUBLE_EQ(ta.at(i).arrival_s, tb.at(i).arrival_s);
    EXPECT_DOUBLE_EQ(ta.at(i).exec_s, tb.at(i).exec_s);
  }
}

TEST_F(WorkloadTest, SimilarityWorkloadsUsePaperTypeSets) {
  util::Rng rng(3);
  const sim::Trace hi = make_similarity_workload(bench_, true, 100, rng);
  const sim::Trace lo = make_similarity_workload(bench_, false, 100, rng);
  const auto hi_types = std::set<sim::FunctionTypeId>(
      {bench_.by_paper_id(1), bench_.by_paper_id(2), bench_.by_paper_id(3),
       bench_.by_paper_id(4), bench_.by_paper_id(11)});
  for (const auto& inv : hi.invocations())
    EXPECT_TRUE(hi_types.count(inv.function)) << inv.function;
  const auto lo_types = std::set<sim::FunctionTypeId>(
      {bench_.by_paper_id(1), bench_.by_paper_id(2), bench_.by_paper_id(5),
       bench_.by_paper_id(9), bench_.by_paper_id(13)});
  for (const auto& inv : lo.invocations())
    EXPECT_TRUE(lo_types.count(inv.function)) << inv.function;
}

TEST_F(WorkloadTest, VarianceWorkloadsSwapTheSets) {
  util::Rng rng(4);
  const sim::Trace hi_var = make_variance_workload(bench_, true, 50, rng);
  // HI-Var must contain the TensorFlow function (paper id 13).
  bool saw_ml = false;
  for (const auto& inv : hi_var.invocations())
    saw_ml |= inv.function == bench_.by_paper_id(13);
  EXPECT_TRUE(saw_ml);
}

TEST_F(WorkloadTest, UniformArrivalsAreEvenlySpaced) {
  util::Rng rng(5);
  const sim::Trace t =
      make_arrival_workload(bench_, ArrivalPattern::kUniform, 300, rng);
  ASSERT_EQ(t.size(), 300U);
  EXPECT_NEAR(t.span_s(), 360.0 - 1.2, 1e-6);
  const double gap0 = t.at(1).arrival_s - t.at(0).arrival_s;
  for (std::size_t i = 2; i < t.size(); ++i)
    EXPECT_NEAR(t.at(i).arrival_s - t.at(i - 1).arrival_s, gap0, 1e-9);
}

TEST_F(WorkloadTest, PeakAlternatesHighAndLowMinutes) {
  util::Rng rng(6);
  const sim::Trace t =
      make_arrival_workload(bench_, ArrivalPattern::kPeak, 300, rng);
  ASSERT_EQ(t.size(), 300U);
  auto count_in_minute = [&](int minute) {
    std::size_t n = 0;
    for (const auto& inv : t.invocations())
      if (inv.arrival_s >= minute * 60.0 && inv.arrival_s < (minute + 1) * 60.0)
        ++n;
    return n;
  };
  EXPECT_EQ(count_in_minute(0), 80U);
  EXPECT_EQ(count_in_minute(1), 20U);
  EXPECT_EQ(count_in_minute(2), 80U);
  EXPECT_EQ(count_in_minute(3), 20U);
}

TEST_F(WorkloadTest, RandomPatternHasExpectedAverageRate) {
  util::Rng rng(7);
  const sim::Trace t =
      make_arrival_workload(bench_, ArrivalPattern::kRandom, 300, rng);
  ASSERT_EQ(t.size(), 300U);
  // Poisson at 300/360 per second: span should be around 360 s.
  EXPECT_GT(t.span_s(), 250.0);
  EXPECT_LT(t.span_s(), 500.0);
}

TEST_F(WorkloadTest, ArrivalPatternNames) {
  EXPECT_EQ(to_string(ArrivalPattern::kUniform), "Uniform");
  EXPECT_EQ(to_string(ArrivalPattern::kPeak), "Peak");
  EXPECT_EQ(to_string(ArrivalPattern::kRandom), "Random");
}

TEST_F(WorkloadTest, LooseCapacityAdmitsEverything) {
  util::Rng rng(8);
  const sim::Trace trace = make_overall_workload(bench_, 120, rng);
  const double loose = estimate_loose_capacity_mb(bench_, trace);
  EXPECT_GT(loose, 0.0);
  const PoolSizes sizes = paper_pool_sizes(loose);
  EXPECT_DOUBLE_EQ(sizes.loose_mb, loose);
  EXPECT_DOUBLE_EQ(sizes.moderate_mb, loose / 2.0);
  EXPECT_DOUBLE_EQ(sizes.tight_mb, loose / 5.0);
}

TEST_F(WorkloadTest, ExecSamplesArePositiveAndNearMean) {
  util::Rng rng(9);
  const auto& fn = bench_.functions.get(bench_.by_paper_id(13));
  double sum = 0.0;
  constexpr int kN = 5'000;
  for (int i = 0; i < kN; ++i) {
    const double e = sample_exec_s(fn, rng);
    EXPECT_GT(e, 0.0);
    sum += e;
  }
  EXPECT_NEAR(sum / kN, fn.mean_exec_s, 0.15 * fn.mean_exec_s);
}

TEST_F(WorkloadTest, SimilarityWorkloadRequiresDivisibleTotal) {
  util::Rng rng(10);
  EXPECT_THROW((void)make_similarity_workload(bench_, true, 101, rng),
               util::CheckError);
}

}  // namespace
}  // namespace mlcr::fstartbench
