#include "fstartbench/benchmark.hpp"

#include <gtest/gtest.h>

#include "containers/matching.hpp"
#include "util/check.hpp"

namespace mlcr::fstartbench {
namespace {

using containers::Level;
using containers::MatchLevel;

class BenchmarkTest : public ::testing::Test {
 protected:
  Benchmark bench_ = make_benchmark();
};

TEST_F(BenchmarkTest, HasThirteenFunctions) {
  EXPECT_EQ(bench_.functions.size(), 13U);
}

TEST_F(BenchmarkTest, PaperIdMappingIsOneBased) {
  EXPECT_EQ(bench_.by_paper_id(1), 0U);
  EXPECT_EQ(bench_.by_paper_id(13), 12U);
  EXPECT_THROW((void)bench_.by_paper_id(0), util::CheckError);
  EXPECT_THROW((void)bench_.by_paper_id(14), util::CheckError);
  EXPECT_EQ(bench_.paper_ids({1, 2, 5}).size(), 3U);
}

TEST_F(BenchmarkTest, TableTwoStructure) {
  // Spot checks against paper Table II.
  const auto& f1 = bench_.functions.get(bench_.by_paper_id(1));
  EXPECT_EQ(bench_.catalog.info(f1.image.level(Level::kOs)[0]).name,
            "alpine:3.18");
  EXPECT_EQ(bench_.catalog.info(f1.image.level(Level::kLanguage)[0]).name,
            "openjdk-17");

  const auto& f9 = bench_.functions.get(bench_.by_paper_id(9));
  EXPECT_EQ(bench_.catalog.info(f9.image.level(Level::kOs)[0]).name,
            "centos:7");
  EXPECT_EQ(f9.description, "Communication");

  const auto& f13 = bench_.functions.get(bench_.by_paper_id(13));
  EXPECT_EQ(f13.image.level(Level::kRuntime).size(), 2U);  // flask + tf
  EXPECT_EQ(f13.description, "Machine learning");
}

TEST_F(BenchmarkTest, SharedImagesAcrossFunctionTypes) {
  // Table II: F2 and F11 (Alpine/Nodejs/Express) share one image, as do
  // F1/F12's bases and F5/F10 (Debian/Python/Flask).
  const auto& f2 = bench_.functions.get(bench_.by_paper_id(2));
  const auto& f11 = bench_.functions.get(bench_.by_paper_id(11));
  EXPECT_EQ(containers::match(f2.image, f11.image), MatchLevel::kL3);

  const auto& f5 = bench_.functions.get(bench_.by_paper_id(5));
  const auto& f10 = bench_.functions.get(bench_.by_paper_id(10));
  EXPECT_EQ(containers::match(f5.image, f10.image), MatchLevel::kL3);

  // F1 vs F12 differ in runtime (sharp) only -> L2.
  const auto& f1 = bench_.functions.get(bench_.by_paper_id(1));
  const auto& f12 = bench_.functions.get(bench_.by_paper_id(12));
  EXPECT_EQ(containers::match(f1.image, f12.image), MatchLevel::kL2);
}

TEST_F(BenchmarkTest, DataAnalyticsFamilyIsNested) {
  // F6 ⊂ F7 ⊂ F8 runtime stacks; all share Debian+Python -> pairwise L2.
  const auto& f6 = bench_.functions.get(bench_.by_paper_id(6));
  const auto& f7 = bench_.functions.get(bench_.by_paper_id(7));
  const auto& f8 = bench_.functions.get(bench_.by_paper_id(8));
  EXPECT_EQ(containers::match(f6.image, f7.image), MatchLevel::kL2);
  EXPECT_EQ(containers::match(f7.image, f8.image), MatchLevel::kL2);
  EXPECT_GT(f7.image.jaccard(f6.image), f8.image.jaccard(f6.image) - 1e-12);
}

TEST_F(BenchmarkTest, SimilarityMetricOrdersWorkloads) {
  // Paper Sec. V: HI-Sim {1,2,3,4,11} ~0.52 vs LO-Sim {1,2,5,9,13} ~0.29.
  const double hi =
      average_pairwise_similarity(bench_, bench_.paper_ids({1, 2, 3, 4, 11}));
  const double lo =
      average_pairwise_similarity(bench_, bench_.paper_ids({1, 2, 5, 9, 13}));
  // Absolute values differ from the paper's (0.52 / 0.29) because our
  // catalog models each framework as one package while the paper counts
  // finer-grained packages; the ordering is what the workloads rely on.
  EXPECT_GT(hi, 2.0 * lo);
  EXPECT_GT(hi, 0.25);
  EXPECT_LT(lo, 0.15);
}

TEST_F(BenchmarkTest, VarianceMetricOrdersWorkloads) {
  // HI-Var {1,2,5,9,13} spans Alpine..TensorFlow; LO-Var {1,2,3,4,11} is all
  // small Alpine stacks.
  const double hi =
      package_size_variance(bench_, bench_.paper_ids({1, 2, 5, 9, 13}));
  const double lo =
      package_size_variance(bench_, bench_.paper_ids({1, 2, 3, 4, 11}));
  EXPECT_GT(hi, 4.0 * lo);
}

TEST_F(BenchmarkTest, ColdStartDominatesExecution) {
  // Paper Sec. II: cold start latency is 1.3x-166x the function runtime.
  const sim::StartupCostModel cost(bench_.catalog, default_cost_config());
  for (const auto& fn : bench_.functions.all()) {
    const double ratio = cost.cold_start(fn).total() / fn.mean_exec_s;
    EXPECT_GE(ratio, 1.3) << fn.name;
    EXPECT_LE(ratio, 166.0) << fn.name;
  }
}

TEST_F(BenchmarkTest, CodePullingDominatesColdStart) {
  // Paper Sec. II: code pulling is 47%-89% of the cold start latency.
  const sim::StartupCostModel cost(bench_.catalog, default_cost_config());
  for (const auto& fn : bench_.functions.all()) {
    const auto b = cost.cold_start(fn);
    const double pull_share = b.pull_s / b.total();
    EXPECT_GE(pull_share, 0.40) << fn.name;
    EXPECT_LE(pull_share, 0.89) << fn.name;
  }
}

TEST_F(BenchmarkTest, InitShareByLanguageKind) {
  // Paper Sec. II: init is small for interpreted languages, large for
  // compiled ones (Java).
  const sim::StartupCostModel cost(bench_.catalog, default_cost_config());
  const auto& java = bench_.functions.get(bench_.by_paper_id(1));
  const auto& python = bench_.functions.get(bench_.by_paper_id(4));
  const auto java_b = cost.cold_start(java);
  const auto py_b = cost.cold_start(python);
  const double java_init =
      (java_b.runtime_init_s + java_b.function_init_s) / java_b.total();
  const double py_init =
      (py_b.runtime_init_s + py_b.function_init_s) / py_b.total();
  EXPECT_GT(java_init, 0.20);
  EXPECT_LT(py_init, 0.10);
}

TEST_F(BenchmarkTest, WarmStartBeatsColdEverywhere) {
  const sim::StartupCostModel cost(bench_.catalog, default_cost_config());
  for (const auto& fn : bench_.functions.all()) {
    const double cold = cost.cold_start(fn).total();
    EXPECT_LT(cost.warm_start(fn, MatchLevel::kL1).total(), cold) << fn.name;
    EXPECT_LT(cost.warm_start(fn, MatchLevel::kL3).total(), 1.0) << fn.name;
  }
}

}  // namespace
}  // namespace mlcr::fstartbench
