#include "fstartbench/azure_like.hpp"

#include <gtest/gtest.h>

#include "policies/runner.hpp"
#include "util/check.hpp"

namespace mlcr::fstartbench {
namespace {

AzureLikeConfig small_config() {
  AzureLikeConfig cfg;
  cfg.num_functions = 400;  // enough for the fractions to concentrate
  cfg.window_s = 3600.0;
  return cfg;
}

TEST(AzureLike, ReproducesCitedInvocationStatistics) {
  const auto w = make_azure_like_workload(small_config(), util::Rng(1));
  // Paper-cited Azure statistics: ~19% invoked once, >40% invoked <= 2x.
  EXPECT_NEAR(w.fraction_invoked_once(), 0.19, 0.06);
  EXPECT_NEAR(w.fraction_invoked_at_most(2), 0.40, 0.08);
  EXPECT_GE(w.fraction_invoked_at_most(2), w.fraction_invoked_once());
}

TEST(AzureLike, HeavyTailedExecutionTimes) {
  const auto w = make_azure_like_workload(small_config(), util::Rng(2));
  // ~50% of functions run under a second (Sec. II-C citation).
  EXPECT_NEAR(w.fraction_short_running(1.0), 0.5, 0.12);
}

TEST(AzureLike, ImageSizesSpreadSeveralFold) {
  const auto w = make_azure_like_workload(small_config(), util::Rng(3));
  EXPECT_GT(w.image_size_spread(), 2.0);
}

TEST(AzureLike, PopulationAndTraceAreConsistent) {
  const auto w = make_azure_like_workload(small_config(), util::Rng(4));
  EXPECT_EQ(w.functions.size(), 400U);
  std::size_t total = 0;
  for (const std::size_t c : w.invocations_per_function) {
    EXPECT_GE(c, 1U);
    total += c;
  }
  EXPECT_EQ(w.trace.size(), total);
  for (const auto& inv : w.trace.invocations()) {
    EXPECT_LT(inv.function, w.functions.size());
    EXPECT_LE(inv.arrival_s, 3600.0);
  }
}

TEST(AzureLike, DeterministicGivenSeed) {
  const auto a = make_azure_like_workload(small_config(), util::Rng(5));
  const auto b = make_azure_like_workload(small_config(), util::Rng(5));
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace.at(i).function, b.trace.at(i).function);
    EXPECT_DOUBLE_EQ(a.trace.at(i).arrival_s, b.trace.at(i).arrival_s);
  }
}

TEST(AzureLike, MultiLevelReuseHelpsLowRepetitionWorkloads) {
  // The paper's motivation: when most functions are invoked once or twice,
  // same-config keep-alive rarely helps, but similar functions still share
  // OS/language stacks that multi-level reuse exploits.
  AzureLikeConfig cfg = small_config();
  cfg.num_functions = 120;
  cfg.window_s = 1800.0;
  const auto w = make_azure_like_workload(cfg, util::Rng(6));
  const sim::StartupCostModel cost(w.catalog);
  const double pool_mb = 6000.0;

  const auto lru = policies::run_system(policies::make_lru_system(),
                                        w.functions, w.catalog, cost, pool_mb,
                                        w.trace);
  const auto greedy = policies::run_system(
      policies::make_greedy_match_system(), w.functions, w.catalog, cost,
      pool_mb, w.trace);
  EXPECT_LT(greedy.cold_starts, lru.cold_starts);
  EXPECT_LT(greedy.total_latency_s, lru.total_latency_s);
  EXPECT_GT(greedy.warm_l1 + greedy.warm_l2, 0U);
}

TEST(AzureLike, ConfigValidation) {
  AzureLikeConfig cfg = small_config();
  cfg.p_single = 0.8;
  cfg.p_double = 0.5;  // sums > 1
  EXPECT_THROW((void)make_azure_like_workload(cfg, util::Rng(1)),
               util::CheckError);
  cfg = small_config();
  cfg.num_functions = 0;
  EXPECT_THROW((void)make_azure_like_workload(cfg, util::Rng(1)),
               util::CheckError);
}

}  // namespace
}  // namespace mlcr::fstartbench
