# Empty dependencies file for mlcr_cli.
# This may be replaced when dependencies are built.
