file(REMOVE_RECURSE
  "CMakeFiles/mlcr_cli.dir/mlcr_cli.cpp.o"
  "CMakeFiles/mlcr_cli.dir/mlcr_cli.cpp.o.d"
  "mlcr_cli"
  "mlcr_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlcr_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
