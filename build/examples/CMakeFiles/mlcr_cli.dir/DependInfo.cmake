
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/mlcr_cli.cpp" "examples/CMakeFiles/mlcr_cli.dir/mlcr_cli.cpp.o" "gcc" "examples/CMakeFiles/mlcr_cli.dir/mlcr_cli.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mlcr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/fstartbench/CMakeFiles/mlcr_fstartbench.dir/DependInfo.cmake"
  "/root/repo/build/src/rl/CMakeFiles/mlcr_rl.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/mlcr_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/policies/CMakeFiles/mlcr_policies.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mlcr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/containers/CMakeFiles/mlcr_containers.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mlcr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
