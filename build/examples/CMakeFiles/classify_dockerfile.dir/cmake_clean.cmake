file(REMOVE_RECURSE
  "CMakeFiles/classify_dockerfile.dir/classify_dockerfile.cpp.o"
  "CMakeFiles/classify_dockerfile.dir/classify_dockerfile.cpp.o.d"
  "classify_dockerfile"
  "classify_dockerfile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/classify_dockerfile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
