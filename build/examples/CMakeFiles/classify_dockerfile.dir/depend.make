# Empty dependencies file for classify_dockerfile.
# This may be replaced when dependencies are built.
