
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/containers/test_cleaner.cpp" "tests/CMakeFiles/mlcr_tests.dir/containers/test_cleaner.cpp.o" "gcc" "tests/CMakeFiles/mlcr_tests.dir/containers/test_cleaner.cpp.o.d"
  "/root/repo/tests/containers/test_dockerfile.cpp" "tests/CMakeFiles/mlcr_tests.dir/containers/test_dockerfile.cpp.o" "gcc" "tests/CMakeFiles/mlcr_tests.dir/containers/test_dockerfile.cpp.o.d"
  "/root/repo/tests/containers/test_image.cpp" "tests/CMakeFiles/mlcr_tests.dir/containers/test_image.cpp.o" "gcc" "tests/CMakeFiles/mlcr_tests.dir/containers/test_image.cpp.o.d"
  "/root/repo/tests/containers/test_image_subset.cpp" "tests/CMakeFiles/mlcr_tests.dir/containers/test_image_subset.cpp.o" "gcc" "tests/CMakeFiles/mlcr_tests.dir/containers/test_image_subset.cpp.o.d"
  "/root/repo/tests/containers/test_matching.cpp" "tests/CMakeFiles/mlcr_tests.dir/containers/test_matching.cpp.o" "gcc" "tests/CMakeFiles/mlcr_tests.dir/containers/test_matching.cpp.o.d"
  "/root/repo/tests/containers/test_package.cpp" "tests/CMakeFiles/mlcr_tests.dir/containers/test_package.cpp.o" "gcc" "tests/CMakeFiles/mlcr_tests.dir/containers/test_package.cpp.o.d"
  "/root/repo/tests/containers/test_pool.cpp" "tests/CMakeFiles/mlcr_tests.dir/containers/test_pool.cpp.o" "gcc" "tests/CMakeFiles/mlcr_tests.dir/containers/test_pool.cpp.o.d"
  "/root/repo/tests/containers/test_pool_model.cpp" "tests/CMakeFiles/mlcr_tests.dir/containers/test_pool_model.cpp.o" "gcc" "tests/CMakeFiles/mlcr_tests.dir/containers/test_pool_model.cpp.o.d"
  "/root/repo/tests/containers/test_registry.cpp" "tests/CMakeFiles/mlcr_tests.dir/containers/test_registry.cpp.o" "gcc" "tests/CMakeFiles/mlcr_tests.dir/containers/test_registry.cpp.o.d"
  "/root/repo/tests/core/test_mlcr.cpp" "tests/CMakeFiles/mlcr_tests.dir/core/test_mlcr.cpp.o" "gcc" "tests/CMakeFiles/mlcr_tests.dir/core/test_mlcr.cpp.o.d"
  "/root/repo/tests/core/test_online.cpp" "tests/CMakeFiles/mlcr_tests.dir/core/test_online.cpp.o" "gcc" "tests/CMakeFiles/mlcr_tests.dir/core/test_online.cpp.o.d"
  "/root/repo/tests/core/test_state_encoder.cpp" "tests/CMakeFiles/mlcr_tests.dir/core/test_state_encoder.cpp.o" "gcc" "tests/CMakeFiles/mlcr_tests.dir/core/test_state_encoder.cpp.o.d"
  "/root/repo/tests/fstartbench/test_azure_like.cpp" "tests/CMakeFiles/mlcr_tests.dir/fstartbench/test_azure_like.cpp.o" "gcc" "tests/CMakeFiles/mlcr_tests.dir/fstartbench/test_azure_like.cpp.o.d"
  "/root/repo/tests/fstartbench/test_benchmark.cpp" "tests/CMakeFiles/mlcr_tests.dir/fstartbench/test_benchmark.cpp.o" "gcc" "tests/CMakeFiles/mlcr_tests.dir/fstartbench/test_benchmark.cpp.o.d"
  "/root/repo/tests/fstartbench/test_workloads.cpp" "tests/CMakeFiles/mlcr_tests.dir/fstartbench/test_workloads.cpp.o" "gcc" "tests/CMakeFiles/mlcr_tests.dir/fstartbench/test_workloads.cpp.o.d"
  "/root/repo/tests/integration/test_determinism.cpp" "tests/CMakeFiles/mlcr_tests.dir/integration/test_determinism.cpp.o" "gcc" "tests/CMakeFiles/mlcr_tests.dir/integration/test_determinism.cpp.o.d"
  "/root/repo/tests/integration/test_end_to_end.cpp" "tests/CMakeFiles/mlcr_tests.dir/integration/test_end_to_end.cpp.o" "gcc" "tests/CMakeFiles/mlcr_tests.dir/integration/test_end_to_end.cpp.o.d"
  "/root/repo/tests/nn/test_attention.cpp" "tests/CMakeFiles/mlcr_tests.dir/nn/test_attention.cpp.o" "gcc" "tests/CMakeFiles/mlcr_tests.dir/nn/test_attention.cpp.o.d"
  "/root/repo/tests/nn/test_layers.cpp" "tests/CMakeFiles/mlcr_tests.dir/nn/test_layers.cpp.o" "gcc" "tests/CMakeFiles/mlcr_tests.dir/nn/test_layers.cpp.o.d"
  "/root/repo/tests/nn/test_learning.cpp" "tests/CMakeFiles/mlcr_tests.dir/nn/test_learning.cpp.o" "gcc" "tests/CMakeFiles/mlcr_tests.dir/nn/test_learning.cpp.o.d"
  "/root/repo/tests/nn/test_optimizer.cpp" "tests/CMakeFiles/mlcr_tests.dir/nn/test_optimizer.cpp.o" "gcc" "tests/CMakeFiles/mlcr_tests.dir/nn/test_optimizer.cpp.o.d"
  "/root/repo/tests/nn/test_serialize.cpp" "tests/CMakeFiles/mlcr_tests.dir/nn/test_serialize.cpp.o" "gcc" "tests/CMakeFiles/mlcr_tests.dir/nn/test_serialize.cpp.o.d"
  "/root/repo/tests/nn/test_tensor.cpp" "tests/CMakeFiles/mlcr_tests.dir/nn/test_tensor.cpp.o" "gcc" "tests/CMakeFiles/mlcr_tests.dir/nn/test_tensor.cpp.o.d"
  "/root/repo/tests/policies/test_baselines.cpp" "tests/CMakeFiles/mlcr_tests.dir/policies/test_baselines.cpp.o" "gcc" "tests/CMakeFiles/mlcr_tests.dir/policies/test_baselines.cpp.o.d"
  "/root/repo/tests/policies/test_oracle.cpp" "tests/CMakeFiles/mlcr_tests.dir/policies/test_oracle.cpp.o" "gcc" "tests/CMakeFiles/mlcr_tests.dir/policies/test_oracle.cpp.o.d"
  "/root/repo/tests/policies/test_prewarm.cpp" "tests/CMakeFiles/mlcr_tests.dir/policies/test_prewarm.cpp.o" "gcc" "tests/CMakeFiles/mlcr_tests.dir/policies/test_prewarm.cpp.o.d"
  "/root/repo/tests/policies/test_zygote.cpp" "tests/CMakeFiles/mlcr_tests.dir/policies/test_zygote.cpp.o" "gcc" "tests/CMakeFiles/mlcr_tests.dir/policies/test_zygote.cpp.o.d"
  "/root/repo/tests/rl/test_dqn.cpp" "tests/CMakeFiles/mlcr_tests.dir/rl/test_dqn.cpp.o" "gcc" "tests/CMakeFiles/mlcr_tests.dir/rl/test_dqn.cpp.o.d"
  "/root/repo/tests/rl/test_qnetwork.cpp" "tests/CMakeFiles/mlcr_tests.dir/rl/test_qnetwork.cpp.o" "gcc" "tests/CMakeFiles/mlcr_tests.dir/rl/test_qnetwork.cpp.o.d"
  "/root/repo/tests/rl/test_replay.cpp" "tests/CMakeFiles/mlcr_tests.dir/rl/test_replay.cpp.o" "gcc" "tests/CMakeFiles/mlcr_tests.dir/rl/test_replay.cpp.o.d"
  "/root/repo/tests/sim/test_cost_model.cpp" "tests/CMakeFiles/mlcr_tests.dir/sim/test_cost_model.cpp.o" "gcc" "tests/CMakeFiles/mlcr_tests.dir/sim/test_cost_model.cpp.o.d"
  "/root/repo/tests/sim/test_env.cpp" "tests/CMakeFiles/mlcr_tests.dir/sim/test_env.cpp.o" "gcc" "tests/CMakeFiles/mlcr_tests.dir/sim/test_env.cpp.o.d"
  "/root/repo/tests/sim/test_env_properties.cpp" "tests/CMakeFiles/mlcr_tests.dir/sim/test_env_properties.cpp.o" "gcc" "tests/CMakeFiles/mlcr_tests.dir/sim/test_env_properties.cpp.o.d"
  "/root/repo/tests/sim/test_invocation.cpp" "tests/CMakeFiles/mlcr_tests.dir/sim/test_invocation.cpp.o" "gcc" "tests/CMakeFiles/mlcr_tests.dir/sim/test_invocation.cpp.o.d"
  "/root/repo/tests/sim/test_metrics.cpp" "tests/CMakeFiles/mlcr_tests.dir/sim/test_metrics.cpp.o" "gcc" "tests/CMakeFiles/mlcr_tests.dir/sim/test_metrics.cpp.o.d"
  "/root/repo/tests/sim/test_trace_io.cpp" "tests/CMakeFiles/mlcr_tests.dir/sim/test_trace_io.cpp.o" "gcc" "tests/CMakeFiles/mlcr_tests.dir/sim/test_trace_io.cpp.o.d"
  "/root/repo/tests/util/test_check.cpp" "tests/CMakeFiles/mlcr_tests.dir/util/test_check.cpp.o" "gcc" "tests/CMakeFiles/mlcr_tests.dir/util/test_check.cpp.o.d"
  "/root/repo/tests/util/test_rng.cpp" "tests/CMakeFiles/mlcr_tests.dir/util/test_rng.cpp.o" "gcc" "tests/CMakeFiles/mlcr_tests.dir/util/test_rng.cpp.o.d"
  "/root/repo/tests/util/test_stats.cpp" "tests/CMakeFiles/mlcr_tests.dir/util/test_stats.cpp.o" "gcc" "tests/CMakeFiles/mlcr_tests.dir/util/test_stats.cpp.o.d"
  "/root/repo/tests/util/test_table.cpp" "tests/CMakeFiles/mlcr_tests.dir/util/test_table.cpp.o" "gcc" "tests/CMakeFiles/mlcr_tests.dir/util/test_table.cpp.o.d"
  "/root/repo/tests/util/test_thread_pool.cpp" "tests/CMakeFiles/mlcr_tests.dir/util/test_thread_pool.cpp.o" "gcc" "tests/CMakeFiles/mlcr_tests.dir/util/test_thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mlcr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/fstartbench/CMakeFiles/mlcr_fstartbench.dir/DependInfo.cmake"
  "/root/repo/build/src/policies/CMakeFiles/mlcr_policies.dir/DependInfo.cmake"
  "/root/repo/build/src/rl/CMakeFiles/mlcr_rl.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/mlcr_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mlcr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/containers/CMakeFiles/mlcr_containers.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mlcr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
