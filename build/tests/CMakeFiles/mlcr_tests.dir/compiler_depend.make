# Empty compiler generated dependencies file for mlcr_tests.
# This may be replaced when dependencies are built.
