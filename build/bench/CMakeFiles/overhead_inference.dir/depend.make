# Empty dependencies file for overhead_inference.
# This may be replaced when dependencies are built.
