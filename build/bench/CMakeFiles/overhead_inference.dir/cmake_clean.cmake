file(REMOVE_RECURSE
  "CMakeFiles/overhead_inference.dir/overhead_inference.cpp.o"
  "CMakeFiles/overhead_inference.dir/overhead_inference.cpp.o.d"
  "overhead_inference"
  "overhead_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overhead_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
