file(REMOVE_RECURSE
  "CMakeFiles/fig11a_similarity.dir/fig11a_similarity.cpp.o"
  "CMakeFiles/fig11a_similarity.dir/fig11a_similarity.cpp.o.d"
  "fig11a_similarity"
  "fig11a_similarity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11a_similarity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
