# Empty compiler generated dependencies file for fig11a_similarity.
# This may be replaced when dependencies are built.
