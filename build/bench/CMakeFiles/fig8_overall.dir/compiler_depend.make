# Empty compiler generated dependencies file for fig8_overall.
# This may be replaced when dependencies are built.
