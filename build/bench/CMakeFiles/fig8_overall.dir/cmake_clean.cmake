file(REMOVE_RECURSE
  "CMakeFiles/fig8_overall.dir/fig8_overall.cpp.o"
  "CMakeFiles/fig8_overall.dir/fig8_overall.cpp.o.d"
  "fig8_overall"
  "fig8_overall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_overall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
