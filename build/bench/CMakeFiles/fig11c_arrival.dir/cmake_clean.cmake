file(REMOVE_RECURSE
  "CMakeFiles/fig11c_arrival.dir/fig11c_arrival.cpp.o"
  "CMakeFiles/fig11c_arrival.dir/fig11c_arrival.cpp.o.d"
  "fig11c_arrival"
  "fig11c_arrival.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11c_arrival.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
