# Empty dependencies file for fig11c_arrival.
# This may be replaced when dependencies are built.
