# Empty compiler generated dependencies file for tab2_functions.
# This may be replaced when dependencies are built.
