file(REMOVE_RECURSE
  "CMakeFiles/tab2_functions.dir/tab2_functions.cpp.o"
  "CMakeFiles/tab2_functions.dir/tab2_functions.cpp.o.d"
  "tab2_functions"
  "tab2_functions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab2_functions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
