file(REMOVE_RECURSE
  "CMakeFiles/azure_motivation.dir/azure_motivation.cpp.o"
  "CMakeFiles/azure_motivation.dir/azure_motivation.cpp.o.d"
  "azure_motivation"
  "azure_motivation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/azure_motivation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
