# Empty compiler generated dependencies file for azure_motivation.
# This may be replaced when dependencies are built.
