# Empty dependencies file for fig11b_variance.
# This may be replaced when dependencies are built.
