file(REMOVE_RECURSE
  "CMakeFiles/fig11b_variance.dir/fig11b_variance.cpp.o"
  "CMakeFiles/fig11b_variance.dir/fig11b_variance.cpp.o.d"
  "fig11b_variance"
  "fig11b_variance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11b_variance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
