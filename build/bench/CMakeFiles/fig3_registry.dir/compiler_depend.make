# Empty compiler generated dependencies file for fig3_registry.
# This may be replaced when dependencies are built.
