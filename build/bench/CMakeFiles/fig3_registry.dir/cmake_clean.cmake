file(REMOVE_RECURSE
  "CMakeFiles/fig3_registry.dir/fig3_registry.cpp.o"
  "CMakeFiles/fig3_registry.dir/fig3_registry.cpp.o.d"
  "fig3_registry"
  "fig3_registry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_registry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
