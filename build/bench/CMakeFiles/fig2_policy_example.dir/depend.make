# Empty dependencies file for fig2_policy_example.
# This may be replaced when dependencies are built.
