file(REMOVE_RECURSE
  "CMakeFiles/mlcr_util.dir/rng.cpp.o"
  "CMakeFiles/mlcr_util.dir/rng.cpp.o.d"
  "CMakeFiles/mlcr_util.dir/stats.cpp.o"
  "CMakeFiles/mlcr_util.dir/stats.cpp.o.d"
  "CMakeFiles/mlcr_util.dir/table.cpp.o"
  "CMakeFiles/mlcr_util.dir/table.cpp.o.d"
  "CMakeFiles/mlcr_util.dir/thread_pool.cpp.o"
  "CMakeFiles/mlcr_util.dir/thread_pool.cpp.o.d"
  "libmlcr_util.a"
  "libmlcr_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlcr_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
