# Empty dependencies file for mlcr_util.
# This may be replaced when dependencies are built.
