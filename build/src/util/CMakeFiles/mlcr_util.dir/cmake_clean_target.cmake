file(REMOVE_RECURSE
  "libmlcr_util.a"
)
