# Empty compiler generated dependencies file for mlcr_rl.
# This may be replaced when dependencies are built.
