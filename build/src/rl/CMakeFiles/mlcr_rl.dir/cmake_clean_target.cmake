file(REMOVE_RECURSE
  "libmlcr_rl.a"
)
