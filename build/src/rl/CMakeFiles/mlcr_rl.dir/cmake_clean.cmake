file(REMOVE_RECURSE
  "CMakeFiles/mlcr_rl.dir/dqn.cpp.o"
  "CMakeFiles/mlcr_rl.dir/dqn.cpp.o.d"
  "CMakeFiles/mlcr_rl.dir/qnetwork.cpp.o"
  "CMakeFiles/mlcr_rl.dir/qnetwork.cpp.o.d"
  "CMakeFiles/mlcr_rl.dir/replay_buffer.cpp.o"
  "CMakeFiles/mlcr_rl.dir/replay_buffer.cpp.o.d"
  "libmlcr_rl.a"
  "libmlcr_rl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlcr_rl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
