file(REMOVE_RECURSE
  "CMakeFiles/mlcr_containers.dir/cleaner.cpp.o"
  "CMakeFiles/mlcr_containers.dir/cleaner.cpp.o.d"
  "CMakeFiles/mlcr_containers.dir/dockerfile.cpp.o"
  "CMakeFiles/mlcr_containers.dir/dockerfile.cpp.o.d"
  "CMakeFiles/mlcr_containers.dir/image.cpp.o"
  "CMakeFiles/mlcr_containers.dir/image.cpp.o.d"
  "CMakeFiles/mlcr_containers.dir/matching.cpp.o"
  "CMakeFiles/mlcr_containers.dir/matching.cpp.o.d"
  "CMakeFiles/mlcr_containers.dir/package.cpp.o"
  "CMakeFiles/mlcr_containers.dir/package.cpp.o.d"
  "CMakeFiles/mlcr_containers.dir/pool.cpp.o"
  "CMakeFiles/mlcr_containers.dir/pool.cpp.o.d"
  "CMakeFiles/mlcr_containers.dir/registry.cpp.o"
  "CMakeFiles/mlcr_containers.dir/registry.cpp.o.d"
  "libmlcr_containers.a"
  "libmlcr_containers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlcr_containers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
