file(REMOVE_RECURSE
  "libmlcr_containers.a"
)
