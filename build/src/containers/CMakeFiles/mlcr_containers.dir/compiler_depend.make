# Empty compiler generated dependencies file for mlcr_containers.
# This may be replaced when dependencies are built.
