
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/containers/cleaner.cpp" "src/containers/CMakeFiles/mlcr_containers.dir/cleaner.cpp.o" "gcc" "src/containers/CMakeFiles/mlcr_containers.dir/cleaner.cpp.o.d"
  "/root/repo/src/containers/dockerfile.cpp" "src/containers/CMakeFiles/mlcr_containers.dir/dockerfile.cpp.o" "gcc" "src/containers/CMakeFiles/mlcr_containers.dir/dockerfile.cpp.o.d"
  "/root/repo/src/containers/image.cpp" "src/containers/CMakeFiles/mlcr_containers.dir/image.cpp.o" "gcc" "src/containers/CMakeFiles/mlcr_containers.dir/image.cpp.o.d"
  "/root/repo/src/containers/matching.cpp" "src/containers/CMakeFiles/mlcr_containers.dir/matching.cpp.o" "gcc" "src/containers/CMakeFiles/mlcr_containers.dir/matching.cpp.o.d"
  "/root/repo/src/containers/package.cpp" "src/containers/CMakeFiles/mlcr_containers.dir/package.cpp.o" "gcc" "src/containers/CMakeFiles/mlcr_containers.dir/package.cpp.o.d"
  "/root/repo/src/containers/pool.cpp" "src/containers/CMakeFiles/mlcr_containers.dir/pool.cpp.o" "gcc" "src/containers/CMakeFiles/mlcr_containers.dir/pool.cpp.o.d"
  "/root/repo/src/containers/registry.cpp" "src/containers/CMakeFiles/mlcr_containers.dir/registry.cpp.o" "gcc" "src/containers/CMakeFiles/mlcr_containers.dir/registry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mlcr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
