file(REMOVE_RECURSE
  "CMakeFiles/mlcr_core.dir/mlcr.cpp.o"
  "CMakeFiles/mlcr_core.dir/mlcr.cpp.o.d"
  "CMakeFiles/mlcr_core.dir/online.cpp.o"
  "CMakeFiles/mlcr_core.dir/online.cpp.o.d"
  "CMakeFiles/mlcr_core.dir/state_encoder.cpp.o"
  "CMakeFiles/mlcr_core.dir/state_encoder.cpp.o.d"
  "CMakeFiles/mlcr_core.dir/trainer.cpp.o"
  "CMakeFiles/mlcr_core.dir/trainer.cpp.o.d"
  "libmlcr_core.a"
  "libmlcr_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlcr_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
