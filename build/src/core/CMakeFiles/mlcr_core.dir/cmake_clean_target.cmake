file(REMOVE_RECURSE
  "libmlcr_core.a"
)
