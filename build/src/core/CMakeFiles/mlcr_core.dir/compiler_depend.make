# Empty compiler generated dependencies file for mlcr_core.
# This may be replaced when dependencies are built.
