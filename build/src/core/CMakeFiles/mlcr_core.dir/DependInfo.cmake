
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/mlcr.cpp" "src/core/CMakeFiles/mlcr_core.dir/mlcr.cpp.o" "gcc" "src/core/CMakeFiles/mlcr_core.dir/mlcr.cpp.o.d"
  "/root/repo/src/core/online.cpp" "src/core/CMakeFiles/mlcr_core.dir/online.cpp.o" "gcc" "src/core/CMakeFiles/mlcr_core.dir/online.cpp.o.d"
  "/root/repo/src/core/state_encoder.cpp" "src/core/CMakeFiles/mlcr_core.dir/state_encoder.cpp.o" "gcc" "src/core/CMakeFiles/mlcr_core.dir/state_encoder.cpp.o.d"
  "/root/repo/src/core/trainer.cpp" "src/core/CMakeFiles/mlcr_core.dir/trainer.cpp.o" "gcc" "src/core/CMakeFiles/mlcr_core.dir/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rl/CMakeFiles/mlcr_rl.dir/DependInfo.cmake"
  "/root/repo/build/src/policies/CMakeFiles/mlcr_policies.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mlcr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/mlcr_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mlcr_util.dir/DependInfo.cmake"
  "/root/repo/build/src/containers/CMakeFiles/mlcr_containers.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
