# Empty dependencies file for mlcr_nn.
# This may be replaced when dependencies are built.
