file(REMOVE_RECURSE
  "libmlcr_nn.a"
)
