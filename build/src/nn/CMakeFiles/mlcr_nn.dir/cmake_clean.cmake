file(REMOVE_RECURSE
  "CMakeFiles/mlcr_nn.dir/attention.cpp.o"
  "CMakeFiles/mlcr_nn.dir/attention.cpp.o.d"
  "CMakeFiles/mlcr_nn.dir/gradcheck.cpp.o"
  "CMakeFiles/mlcr_nn.dir/gradcheck.cpp.o.d"
  "CMakeFiles/mlcr_nn.dir/layers.cpp.o"
  "CMakeFiles/mlcr_nn.dir/layers.cpp.o.d"
  "CMakeFiles/mlcr_nn.dir/optimizer.cpp.o"
  "CMakeFiles/mlcr_nn.dir/optimizer.cpp.o.d"
  "CMakeFiles/mlcr_nn.dir/serialize.cpp.o"
  "CMakeFiles/mlcr_nn.dir/serialize.cpp.o.d"
  "CMakeFiles/mlcr_nn.dir/tensor.cpp.o"
  "CMakeFiles/mlcr_nn.dir/tensor.cpp.o.d"
  "libmlcr_nn.a"
  "libmlcr_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlcr_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
