file(REMOVE_RECURSE
  "libmlcr_fstartbench.a"
)
