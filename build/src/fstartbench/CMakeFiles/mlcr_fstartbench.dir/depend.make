# Empty dependencies file for mlcr_fstartbench.
# This may be replaced when dependencies are built.
