file(REMOVE_RECURSE
  "CMakeFiles/mlcr_fstartbench.dir/azure_like.cpp.o"
  "CMakeFiles/mlcr_fstartbench.dir/azure_like.cpp.o.d"
  "CMakeFiles/mlcr_fstartbench.dir/benchmark.cpp.o"
  "CMakeFiles/mlcr_fstartbench.dir/benchmark.cpp.o.d"
  "CMakeFiles/mlcr_fstartbench.dir/workloads.cpp.o"
  "CMakeFiles/mlcr_fstartbench.dir/workloads.cpp.o.d"
  "libmlcr_fstartbench.a"
  "libmlcr_fstartbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlcr_fstartbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
