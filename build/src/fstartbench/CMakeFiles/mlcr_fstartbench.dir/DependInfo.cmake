
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fstartbench/azure_like.cpp" "src/fstartbench/CMakeFiles/mlcr_fstartbench.dir/azure_like.cpp.o" "gcc" "src/fstartbench/CMakeFiles/mlcr_fstartbench.dir/azure_like.cpp.o.d"
  "/root/repo/src/fstartbench/benchmark.cpp" "src/fstartbench/CMakeFiles/mlcr_fstartbench.dir/benchmark.cpp.o" "gcc" "src/fstartbench/CMakeFiles/mlcr_fstartbench.dir/benchmark.cpp.o.d"
  "/root/repo/src/fstartbench/workloads.cpp" "src/fstartbench/CMakeFiles/mlcr_fstartbench.dir/workloads.cpp.o" "gcc" "src/fstartbench/CMakeFiles/mlcr_fstartbench.dir/workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/mlcr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/policies/CMakeFiles/mlcr_policies.dir/DependInfo.cmake"
  "/root/repo/build/src/containers/CMakeFiles/mlcr_containers.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mlcr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
