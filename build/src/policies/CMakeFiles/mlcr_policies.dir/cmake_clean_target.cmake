file(REMOVE_RECURSE
  "libmlcr_policies.a"
)
