file(REMOVE_RECURSE
  "CMakeFiles/mlcr_policies.dir/baselines.cpp.o"
  "CMakeFiles/mlcr_policies.dir/baselines.cpp.o.d"
  "CMakeFiles/mlcr_policies.dir/oracle.cpp.o"
  "CMakeFiles/mlcr_policies.dir/oracle.cpp.o.d"
  "CMakeFiles/mlcr_policies.dir/prewarm.cpp.o"
  "CMakeFiles/mlcr_policies.dir/prewarm.cpp.o.d"
  "CMakeFiles/mlcr_policies.dir/runner.cpp.o"
  "CMakeFiles/mlcr_policies.dir/runner.cpp.o.d"
  "CMakeFiles/mlcr_policies.dir/zygote.cpp.o"
  "CMakeFiles/mlcr_policies.dir/zygote.cpp.o.d"
  "libmlcr_policies.a"
  "libmlcr_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlcr_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
