# Empty dependencies file for mlcr_policies.
# This may be replaced when dependencies are built.
