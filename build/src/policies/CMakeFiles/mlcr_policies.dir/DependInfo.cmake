
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/policies/baselines.cpp" "src/policies/CMakeFiles/mlcr_policies.dir/baselines.cpp.o" "gcc" "src/policies/CMakeFiles/mlcr_policies.dir/baselines.cpp.o.d"
  "/root/repo/src/policies/oracle.cpp" "src/policies/CMakeFiles/mlcr_policies.dir/oracle.cpp.o" "gcc" "src/policies/CMakeFiles/mlcr_policies.dir/oracle.cpp.o.d"
  "/root/repo/src/policies/prewarm.cpp" "src/policies/CMakeFiles/mlcr_policies.dir/prewarm.cpp.o" "gcc" "src/policies/CMakeFiles/mlcr_policies.dir/prewarm.cpp.o.d"
  "/root/repo/src/policies/runner.cpp" "src/policies/CMakeFiles/mlcr_policies.dir/runner.cpp.o" "gcc" "src/policies/CMakeFiles/mlcr_policies.dir/runner.cpp.o.d"
  "/root/repo/src/policies/zygote.cpp" "src/policies/CMakeFiles/mlcr_policies.dir/zygote.cpp.o" "gcc" "src/policies/CMakeFiles/mlcr_policies.dir/zygote.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/mlcr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/containers/CMakeFiles/mlcr_containers.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mlcr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
