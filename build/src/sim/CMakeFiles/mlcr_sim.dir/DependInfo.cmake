
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cost_model.cpp" "src/sim/CMakeFiles/mlcr_sim.dir/cost_model.cpp.o" "gcc" "src/sim/CMakeFiles/mlcr_sim.dir/cost_model.cpp.o.d"
  "/root/repo/src/sim/env.cpp" "src/sim/CMakeFiles/mlcr_sim.dir/env.cpp.o" "gcc" "src/sim/CMakeFiles/mlcr_sim.dir/env.cpp.o.d"
  "/root/repo/src/sim/function_type.cpp" "src/sim/CMakeFiles/mlcr_sim.dir/function_type.cpp.o" "gcc" "src/sim/CMakeFiles/mlcr_sim.dir/function_type.cpp.o.d"
  "/root/repo/src/sim/invocation.cpp" "src/sim/CMakeFiles/mlcr_sim.dir/invocation.cpp.o" "gcc" "src/sim/CMakeFiles/mlcr_sim.dir/invocation.cpp.o.d"
  "/root/repo/src/sim/metrics.cpp" "src/sim/CMakeFiles/mlcr_sim.dir/metrics.cpp.o" "gcc" "src/sim/CMakeFiles/mlcr_sim.dir/metrics.cpp.o.d"
  "/root/repo/src/sim/trace_io.cpp" "src/sim/CMakeFiles/mlcr_sim.dir/trace_io.cpp.o" "gcc" "src/sim/CMakeFiles/mlcr_sim.dir/trace_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/containers/CMakeFiles/mlcr_containers.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mlcr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
