file(REMOVE_RECURSE
  "CMakeFiles/mlcr_sim.dir/cost_model.cpp.o"
  "CMakeFiles/mlcr_sim.dir/cost_model.cpp.o.d"
  "CMakeFiles/mlcr_sim.dir/env.cpp.o"
  "CMakeFiles/mlcr_sim.dir/env.cpp.o.d"
  "CMakeFiles/mlcr_sim.dir/function_type.cpp.o"
  "CMakeFiles/mlcr_sim.dir/function_type.cpp.o.d"
  "CMakeFiles/mlcr_sim.dir/invocation.cpp.o"
  "CMakeFiles/mlcr_sim.dir/invocation.cpp.o.d"
  "CMakeFiles/mlcr_sim.dir/metrics.cpp.o"
  "CMakeFiles/mlcr_sim.dir/metrics.cpp.o.d"
  "CMakeFiles/mlcr_sim.dir/trace_io.cpp.o"
  "CMakeFiles/mlcr_sim.dir/trace_io.cpp.o.d"
  "libmlcr_sim.a"
  "libmlcr_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlcr_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
