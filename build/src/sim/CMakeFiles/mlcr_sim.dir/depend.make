# Empty dependencies file for mlcr_sim.
# This may be replaced when dependencies are built.
