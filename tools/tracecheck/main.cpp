// tracecheck: validates a Chrome trace_event JSON file against the schema in
// src/obs/schema_check.hpp and optionally requires named events to be
// present. Run by the obs.trace_validate CTest (and CI's trace-smoke job)
// against the trace a small bench writes with --trace.
//
//   tracecheck <trace.json> [--require NAME]... [--flows] [--summary]
//
// --require NAME passes when NAME occurs as a complete span ("X"), an
// instant ("i"/"I"), a counter series ("C") or a flow start ("s") — the
// lifecycle mixes all of them (e.g. "match" is an instant, "startup" a span,
// "pool_used_mb" a counter, "request" a serving flow). --flows additionally
// requires at least one flow event and validates cross-thread flow pairing:
// every flow-start must be matched by a flow-end on some thread, and no
// end/step may appear without a start (CI's serve-telemetry-smoke gate).
// Exit 0 on a schema-valid trace with all required names (and, with
// --flows, clean pairing), 1 otherwise, 2 on usage/IO errors.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/schema_check.hpp"

int main(int argc, char** argv) {
  std::string path;
  std::vector<std::string> required;
  bool summary = false;
  bool flows = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--require" && i + 1 < argc)
      required.push_back(argv[++i]);
    else if (arg == "--summary")
      summary = true;
    else if (arg == "--flows")
      flows = true;
    else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: tracecheck <trace.json> [--require NAME]... "
                   "[--flows] [--summary]\n";
      return 0;
    } else if (path.empty())
      path = arg;
    else {
      std::cerr << "tracecheck: unexpected argument '" << arg << "'\n";
      return 2;
    }
  }
  if (path.empty()) {
    std::cerr << "tracecheck: no trace file given\n";
    return 2;
  }

  std::ifstream is(path, std::ios::binary);
  if (!is.is_open()) {
    std::cerr << "tracecheck: cannot read " << path << "\n";
    return 2;
  }
  std::ostringstream buf;
  buf << is.rdbuf();

  const auto report = mlcr::obs::check_trace_json(buf.str());
  for (const std::string& err : report.errors)
    std::cout << path << ": " << err << "\n";

  bool missing = false;
  for (const std::string& name : required) {
    if (report.span_counts.count(name) != 0 ||
        report.instant_counts.count(name) != 0 ||
        report.counter_counts.count(name) != 0 ||
        report.flow_start_counts.count(name) != 0)
      continue;
    std::cout << path << ": required event '" << name
              << "' not found as a span, instant, counter or flow\n";
    missing = true;
  }

  bool flows_bad = false;
  if (flows) {
    if (report.flow_start_counts.empty()) {
      std::cout << path << ": --flows given but the trace has no flow "
                   "events\n";
      flows_bad = true;
    }
    for (const std::string& err : report.flow_errors) {
      std::cout << path << ": " << err << "\n";
      flows_bad = true;
    }
  }

  if (summary || !report.errors.empty() || missing || flows_bad) {
    std::cout << path << ": " << report.event_count << " events, "
              << report.span_counts.size() << " span names, "
              << report.instant_counts.size() << " instant names, "
              << report.counter_counts.size() << " counter series, "
              << report.flow_start_counts.size() << " flow names\n";
  }
  if (summary) {
    for (const auto& [name, n] : report.span_counts)
      std::cout << "  span    " << name << " x" << n << "\n";
    for (const auto& [name, n] : report.instant_counts)
      std::cout << "  instant " << name << " x" << n << "\n";
    for (const auto& [name, n] : report.counter_counts)
      std::cout << "  counter " << name << " x" << n << "\n";
    for (const auto& [name, n] : report.flow_start_counts)
      std::cout << "  flow    " << name << " x" << n << "\n";
  }
  return report.ok() && !missing && !flows_bad ? 0 : 1;
}
