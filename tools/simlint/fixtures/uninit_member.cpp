// Fixture for the uninit-member rule. Linted with pretend path
// "src/containers/uninit_member.cpp" (the rule is scoped to src/sim and
// src/containers).
#include <cstdint>
#include <string>
#include <vector>

struct BadRecord {
  double latency_s;        // VIOLATION uninit-member
  bool cold;               // VIOLATION uninit-member
  std::uint64_t seq;       // VIOLATION uninit-member
  std::size_t count;       // VIOLATION uninit-member
  double ok_latency = 0.0;      // initialized: fine
  std::string name;             // non-scalar: fine
  std::vector<double> samples;  // non-scalar: fine
  double legacy_field;  // simlint:allow(uninit-member) fixture suppression

  // Members of inline functions are locals, not members: fine.
  double sum() const {
    double total = 0.0;
    return total + latency_s;
  }
};

class BadState {
 public:
  double api() const { return seen_; }

 private:
  double seen_;  // VIOLATION uninit-member
};

// Function-local scalars are not members: fine.
double local_scalars() {
  double x = 1.0;
  int y = 2;
  return x + y;
}
