// Lock-discipline fixture: each marked line must fire exactly its rule.
// Linted as src/serve/lock_discipline.cpp, but the lock rules are tree-wide;
// the shapes below mirror SchedulerService / ShardedFleetIndex locking.
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <vector>

struct Shard {
  mutable std::shared_mutex mutex;
};

class BadService {
 public:
  // Rank inversion: the inference mutex (rank 20) may only be taken after
  // the shard mutexes (rank 10) it coordinates with.
  void inference_then_shard(std::size_t s) {
    std::lock_guard inference_lock(inference_mutex_);
    std::lock_guard shard_lock(*shard_mutexes_[s]);  // VIOLATION lock-order
  }

  // Same mutex twice on one path self-deadlocks a non-recursive mutex.
  void same_shard_twice() {
    std::lock_guard first(*shard_mutexes_[0]);
    std::lock_guard again(*shard_mutexes_[0]);  // VIOLATION lock-double
  }

  // Indexed-family members must be taken in ascending index order.
  void descending_literals() {
    std::lock_guard high(*shard_mutexes_[1]);
    std::lock_guard low(*shard_mutexes_[0]);  // VIOLATION lock-order
  }

  // Accumulating family locks in a loop without sorting + deduplicating the
  // indexes first: two workers with interleaved shard lists deadlock.
  void unsorted_wave(const std::vector<std::size_t>& shards) {
    std::vector<std::unique_lock<std::mutex>> locks;
    locks.reserve(shards.size());
    for (const std::size_t s : shards)
      locks.emplace_back(*shard_mutexes_[s]);  // VIOLATION lock-loop
  }

  // Index shard locks are leaves: nothing may be acquired under one.
  void under_leaf(Shard& shard) {
    std::shared_lock lock(shard.mutex);
    std::lock_guard inference_lock(inference_mutex_);  // VIOLATION lock-order
  }

  // Bare calls bypass RAII: an early return or exception leaks the lock.
  void bare_calls() {
    inference_mutex_.lock();    // VIOLATION bare-lock
    inference_mutex_.unlock();  // VIOLATION bare-lock
  }

 private:
  std::vector<std::unique_ptr<std::mutex>> shard_mutexes_;
  std::mutex inference_mutex_;
};
