// Fixture for obs-concurrent-registry: serving-layer code must not use the
// raw single-threaded obs types directly. Recording goes through the
// serve::Telemetry facade, whose sharded registry and serialised trace
// emission make the hot path safe; everything else in src/serve that names
// the raw types is a data race waiting for a second worker.

namespace mlcr::serve {

struct BadWorkerState {
  obs::MetricsRegistry registry;  // VIOLATION obs-concurrent-registry
  obs::Tracer* tracer = nullptr;  // VIOLATION obs-concurrent-registry
};

double bad_read(const obs::MetricsRegistry& r);  // VIOLATION obs-concurrent-registry

// The concurrent facade is the sanctioned path: the word-boundary match
// must not fire on ConcurrentMetricsRegistry, and recording through a
// Telemetry reference never names the raw types at all.
inline void good_record(obs::ConcurrentMetricsRegistry& registry) {
  registry.add("serve.submitted");
}

}  // namespace mlcr::serve
