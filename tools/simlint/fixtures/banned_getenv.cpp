// Fixture for the banned-getenv rule. Linted with pretend paths
// "src/sim/banned_getenv.cpp" (fires) and "bench/banned_getenv.cpp"
// (exempt — the rule is scoped to src/).
#include <cstdlib>

const char* bad_env() {
  return std::getenv("MLCR_SEED");  // VIOLATION banned-getenv
}

const char* bad_env_unqualified() {
  return getenv("MLCR_SEED");  // VIOLATION banned-getenv
}
