// Clean fixture: representative simulator-style code that must produce zero
// violations under every rule, even when linted with the most heavily
// scoped pretend path ("src/sim/clean.cpp" and "src/containers/clean.cpp").
#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

struct Record {
  std::uint64_t seq = 0;
  double latency_s = 0.0;
  bool cold = true;
};

class Collector {
 public:
  void record(Record rec) {
    total_latency_s_ += rec.latency_s;
    by_seq_[rec.seq] = rec;
  }

  // std::map iteration is deterministic: fine to fold into metrics.
  double recomputed_total() const {
    double total = 0.0;
    for (const auto& [seq, rec] : by_seq_) total += rec.latency_s;
    return total;
  }

  // Unordered lookup (no iteration) is fine.
  bool seen(std::uint64_t seq) const { return index_.count(seq) != 0; }
  void mark(std::uint64_t seq, std::size_t slot) { index_[seq] = slot; }

 private:
  double total_latency_s_ = 0.0;
  std::map<std::uint64_t, Record> by_seq_;
  std::unordered_map<std::uint64_t, std::size_t> index_;
};
