// Fixture for the banned-clock rule. Linted twice: with pretend path
// "src/sim/banned_clock.cpp" (fires) and "src/util/banned_clock.cpp"
// (exempt — clocks are confined to util/).
#include <chrono>

double bad_wall_clock() {
  const auto t = std::chrono::system_clock::now();  // VIOLATION banned-clock
  return static_cast<double>(t.time_since_epoch().count());
}

double bad_steady() {
  const auto t = std::chrono::steady_clock::now();  // VIOLATION banned-clock
  return static_cast<double>(t.time_since_epoch().count());
}

double bad_hires() {
  const auto t =
      std::chrono::high_resolution_clock::now();  // VIOLATION banned-clock
  return static_cast<double>(t.time_since_epoch().count());
}
