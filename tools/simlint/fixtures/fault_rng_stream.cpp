// Fixture for the fault-rng-stream rule. Linted with pretend path
// "src/faults/fault_rng_stream.cpp" (in scope) and "src/core/..." (out of
// scope, must stay quiet): util::Rng constructed from a literal seed in
// fault-handling code decouples injected faults from the episode seed.
namespace util {
class Rng {
 public:
  Rng() = default;
  explicit Rng(unsigned long long seed) { (void)seed; }
  Rng split() { return Rng(); }
};
}  // namespace util

struct Episode {
  unsigned long long seed = 1;
};

void bad_literal_seeds() {
  util::Rng rng(42);              // VIOLATION fault-rng-stream
  util::Rng hex(0xC0FFEEULL);     // VIOLATION fault-rng-stream
  util::Rng braced{7};            // VIOLATION fault-rng-stream
  (void)rng;
  (void)hex;
  (void)braced;
}

void good_derived_streams(util::Rng& master, const Episode& episode) {
  // Splitting the caller's stream or forwarding a seed variable keeps fault
  // injection a pure function of the episode.
  util::Rng stream = master.split();
  util::Rng seeded(episode.seed);
  (void)stream;
  (void)seeded;
}
