// Unused-suppression fixture: a simlint:allow(...) that still matches a
// violation is silent, while stale or misspelled allowances are errors on
// the line of the comment itself.
#include <cstdlib>

// This suppression is used (it silences banned-random) — quiet.
inline int jitter() {
  return std::rand() % 3;  // simlint:allow(banned-random) fixture-justified
}

// A known rule that fires nowhere near this line is a stale allowance.
inline int idle() {
  return 7;  // simlint:allow(banned-clock)  // VIOLATION unused-suppression
}

// A misspelled rule id can never match anything.
// simlint:allow(baned-random)  // VIOLATION unused-suppression

// File-level allowances go stale the same way.
// simlint:allow-file(banned-getenv)  // VIOLATION unused-suppression
