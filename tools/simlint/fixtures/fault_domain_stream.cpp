// Fixture for the fault-domain-stream rule. Linted with pretend path
// "src/faults/fault_domain_stream.cpp" (in scope) and "src/core/..." (out
// of scope, must stay quiet): a default-constructed util::Rng in fault or
// crash-handling code draws from the hidden default seed, so the sampled
// domain schedule stops being a function of the episode seed and the
// zero-correlation replay oracle no longer holds.
namespace util {
class Rng {
 public:
  Rng() = default;
  explicit Rng(unsigned long long seed) { (void)seed; }
  Rng split() { return *this; }
};
}  // namespace util

struct DomainPlan {
  double correlation = 0.0;
};

void bad_adhoc_generators() {
  util::Rng rng;       // VIOLATION fault-domain-stream
  util::Rng braced{};  // VIOLATION fault-domain-stream
  (void)rng;
  (void)braced;
}

void good_split_streams(util::Rng& injector_stream, unsigned long long seed) {
  // The injector's stream is the single source: split one child per concern
  // (domain schedule, per-node background) in a fixed draw order, or seed
  // explicitly from a variable the episode owns.
  util::Rng domain_stream = injector_stream.split();
  util::Rng seeded(seed);
  util::Rng& borrowed = injector_stream;
  (void)domain_stream;
  (void)seeded;
  (void)borrowed;
}
