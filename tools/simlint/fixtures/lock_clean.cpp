// Clean lock-discipline fixture: the blessed acquisition patterns from
// SchedulerService and ShardedFleetIndex must produce zero violations.
#include <algorithm>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <vector>

struct Shard {
  mutable std::shared_mutex mutex;
};

class GoodService {
 public:
  // Ascending ranks: shard mutex (10), then inference mutex (20).
  void dispatch_one(std::size_t s) {
    std::lock_guard lock(*shard_mutexes_[s]);
    std::lock_guard inference_lock(inference_mutex_);
  }

  // The wave pattern: sort + dedup the shard list, accumulate guards in
  // ascending order, then take the inference mutex on top.
  void dispatch_wave(std::vector<std::size_t> shards) {
    std::sort(shards.begin(), shards.end());
    shards.erase(std::unique(shards.begin(), shards.end()), shards.end());
    std::vector<std::unique_lock<std::mutex>> locks;
    locks.reserve(shards.size());
    for (const std::size_t shard : shards)
      locks.emplace_back(*shard_mutexes_[shard]);
    std::lock_guard inference_lock(inference_mutex_);
  }

  // Leaf locks held one at a time, released before the next iteration.
  void query() const {
    for (const auto& shard : shards_) {
      std::shared_lock lock(shard->mutex);
    }
  }

  // Ascending literal indexes within the family are legal.
  void ascending_literals() {
    std::lock_guard low(*shard_mutexes_[0]);
    std::lock_guard high(*shard_mutexes_[1]);
  }

  // defer_lock acquires nothing, so no ordering fact is recorded.
  void deferred(std::mutex& m) {
    std::unique_lock lock(m, std::defer_lock);
  }

 private:
  std::vector<std::unique_ptr<std::mutex>> shard_mutexes_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::mutex inference_mutex_;
};
