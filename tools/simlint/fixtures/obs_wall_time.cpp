// Fixture for the obs-wall-time rule: the tracing layer (src/obs) is
// clock-free by contract — every timestamp is supplied by the caller, so a
// sim-track trace is a pure function of the episode. Wall time enters traces
// only from bench code via util::wall_now_us (the src/util allowed zone).
// This file is linted as src/obs/obs_wall_time.cpp; it is never compiled.
#include <ctime>

namespace mlcr::obs {

double bad_wall_stamp() {
  return static_cast<double>(util::wall_now_us());  // VIOLATION obs-wall-time
}

void bad_posix_clocks() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);  // VIOLATION obs-wall-time
  timeval tv{};
  gettimeofday(&tv, nullptr);  // VIOLATION obs-wall-time
  timespec_get(&ts, TIME_UTC);  // VIOLATION obs-wall-time
}

void bad_calendar_time() {
  std::time_t t = 0;
  (void)localtime(&t);  // VIOLATION obs-wall-time
  (void)gmtime(&t);     // VIOLATION obs-wall-time
}

// The contract: timestamps flow in through the API. Never flagged.
double good_caller_supplied(double now_us) { return now_us; }

// Identifiers that merely contain a banned name are not calls.
struct Clock {
  double wall_now_us_cache = 0.0;
  double cached() const { return wall_now_us_cache; }
};

}  // namespace mlcr::obs
