// Fixture for the pointer-key rule. Linted with pretend path
// "src/sim/pointer_key.cpp".
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

struct Container;

// clang-format off
std::unordered_map<Container*, int> bad_umap;        // VIOLATION pointer-key
std::map<const Container*, int> bad_map;             // VIOLATION pointer-key
std::set<Container*> bad_set;                        // VIOLATION pointer-key
std::unordered_set<const Container*> bad_uset;       // VIOLATION pointer-key
std::map<int, Container*> fine_pointer_value;        // values are fine
// clang-format on
