// Layering fixture (bad tree): util is layer 0 and may not reach up into
// the serving layer.
#pragma once

#include "serve/api.hpp"  // VIOLATION layer-upward

namespace fixture {
inline int helper() { return api_version(); }
}  // namespace fixture
