// Layering fixture (bad tree): serve (layer 6) including sim (layer 3) is a
// legal downward edge; the violation lives in the files below it.
#pragma once

#include "sim/loop_a.hpp"

namespace fixture {
inline int api_version() { return loop_a(); }
}  // namespace fixture
