// Layering fixture (bad tree): this include closes the loop_a -> loop_b ->
// loop_a cycle, so the cycle is reported here.
#pragma once

#include "sim/loop_a.hpp"  // VIOLATION layer-cycle

namespace fixture {
inline int loop_b() { return 2; }
}  // namespace fixture
