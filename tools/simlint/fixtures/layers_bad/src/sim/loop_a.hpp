// Layering fixture (bad tree): half of an include cycle within one layer.
#pragma once

#include "sim/loop_b.hpp"

namespace fixture {
inline int loop_a() { return 1; }
}  // namespace fixture
