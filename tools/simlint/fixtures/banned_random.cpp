// Fixture for the banned-random rule. Linted with pretend path
// "src/sim/banned_random.cpp"; each marked line must fire.
#include <cstdlib>
#include <random>

int bad_device() {
  std::random_device rd;  // VIOLATION banned-random
  return static_cast<int>(rd());
}

int bad_rand() {
  std::srand(42);      // VIOLATION banned-random
  return rand() % 10;  // VIOLATION banned-random
}

int allowed_rand() {
  return rand() % 10;  // simlint:allow(banned-random) fixture suppression
}

// Mentions of rand() in comments and "rand()" in strings must not fire.
const char* kNote = "call rand() never";
