// Layering fixture (clean tree): serve (layer 6) may include any lower
// layer; unresolved and angle-bracket includes are ignored.
#pragma once

#include <vector>

#include "sim/engine.hpp"
#include "third_party/not_in_tree.hpp"
#include "util/base.hpp"

namespace fixture {
inline int front() { return engine() + base(); }
}  // namespace fixture
