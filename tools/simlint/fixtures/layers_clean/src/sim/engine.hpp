// Layering fixture (clean tree): sim (layer 3) reaching down to util
// (layer 0) is the intended direction.
#pragma once

#include "util/base.hpp"

namespace fixture {
inline int engine() { return base() + 1; }
}  // namespace fixture
