// Layering fixture (clean tree): the foundation includes nothing.
#pragma once

namespace fixture {
inline int base() { return 0; }
}  // namespace fixture
