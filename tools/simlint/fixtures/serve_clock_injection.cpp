// Fixture for the serve-clock-injection rule: service/simulation logic never
// reads wall time directly — it asks an injected serve::Clock, so the same
// code runs live (WallClock) or deterministically replayed (SimClock). The
// only wall-time consumers are src/util and src/serve/clock.cpp. This file
// is linted as src/serve/service_like.cpp; it is never compiled.
#include <ctime>

namespace mlcr::serve {

double bad_direct_wall_read() {
  return static_cast<double>(util::wall_now_us());  // VIOLATION serve-clock-injection
}

void bad_posix_clocks() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);  // VIOLATION serve-clock-injection
  timeval tv{};
  gettimeofday(&tv, nullptr);  // VIOLATION serve-clock-injection
}

// The contract: time flows in through the injected clock. Never flagged.
double good_injected_time(const Clock& clock) { return clock.now_s(); }

// Identifiers that merely contain a banned name are not calls.
struct Stamp {
  double wall_now_us_cache = 0.0;
  double cached() const { return wall_now_us_cache; }
};

}  // namespace mlcr::serve
