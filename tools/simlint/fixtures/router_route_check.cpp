// Fixture for the router-route-check rule: every Router::route() definition
// in fleet/router.cpp must validate its placement inputs (MLCR_CHECK* or
// assert) before returning a node index. The rule discovers definitions by
// the `Type::route(` pattern, so a newly added Router is covered without
// touching a table. Linted as src/fleet/router.cpp; never compiled.
namespace mlcr::fleet {

std::size_t UncheckedRouter::route(const FleetEnv& fleet,  // VIOLATION router-route-check
                                   const sim::Invocation& inv) {
  return seq_++ % fleet.node_count();
}

std::size_t CheckedRouter::route(const FleetEnv& fleet,
                                 const sim::Invocation& inv) {
  MLCR_CHECK_MSG(fleet.node_count() > 0, "route() over an empty fleet");
  return 0;
}

std::size_t AssertingRouter::route(const FleetEnv& fleet,
                                   const sim::Invocation& inv) {
  assert(fleet.node_count() > 0);
  return fleet.node_count() - 1;
}

// A one-line body with its check still counts as checked.
std::size_t OneLineRouter::route(const FleetEnv& f, const sim::Invocation&) { MLCR_CHECK(f.node_count() > 0); return 0; }

// Declarations and qualified calls are not definitions: never flagged.
std::size_t ForwardRouter::route(const FleetEnv&, const sim::Invocation&);

std::size_t DelegatingRouter::route(const FleetEnv& fleet,
                                    const sim::Invocation& inv) {
  MLCR_CHECK_MSG(fleet.node_count() > 0, "route() over an empty fleet");
  return CheckedRouter::route(fleet, inv);
}

}  // namespace mlcr::fleet
