// Fixture for the unordered-iteration rule. Linted with pretend path
// "src/sim/unordered_iteration.cpp" (metric-producing code).
#include <cstdint>
#include <unordered_map>
#include <vector>

struct Stats {
  std::unordered_map<std::uint64_t, double> by_id_;
  std::vector<double> ordered_;

  double bad_range_for() const {
    double best = 0.0;
    for (const auto& [id, v] : by_id_) best = v;  // VIOLATION unordered-iteration
    return best;
  }

  double bad_begin() const {
    return by_id_.begin()->second;  // VIOLATION unordered-iteration
  }

  double allowed_sum() const {
    double total = 0.0;
    // Exact-sum folds are order-safe for integers; justified suppression.
    for (const auto& [id, v] : by_id_)  // simlint:allow(unordered-iteration)
      total += v;
    return total;
  }

  double fine_vector() const {
    double total = 0.0;
    for (const double v : ordered_) total += v;
    return total;
  }
};

double local_unordered() {
  std::unordered_map<int, double> pulls;
  double share = 0.0;
  for (const auto& [k, v] : pulls) share = v;  // VIOLATION unordered-iteration
  return share;
}
