// Fixture for the missing-transition-check rule. Linted with pretend path
// "src/sim/env.cpp", so the transition table expects ClusterEnv::offer,
// step, advance_idle, finish_streaming, crash and recover to validate
// state. Here offer() and step() have no check (each fires once);
// advance_idle / crash (MLCR_CHECK) and finish_streaming / recover
// (MLCR_AUDIT point) are covered.
struct Invocation {
  double arrival_s = 0.0;
};
struct Action {};
struct StepResult {};

#define MLCR_CHECK(cond) (void)(cond)
#define MLCR_AUDIT_POINT(expr) (void)0

class ClusterEnv {
 public:
  void offer(Invocation inv);
  StepResult step(const Action& action);
  void advance_idle(double time);
  void finish_streaming();
  void crash(double time);
  void recover(double time);
  void audit() const {}

 private:
  double last_arrival_ = 0.0;
  bool down_ = false;
};

void ClusterEnv::offer(Invocation inv) {  // VIOLATION missing-transition-check
  last_arrival_ = inv.arrival_s;
}

// The report lands on the line naming the function:
StepResult ClusterEnv::step(const Action& a) {  // VIOLATION missing-transition-check
  (void)a;
  return StepResult{};
}

void ClusterEnv::advance_idle(double time) {
  MLCR_CHECK(time >= last_arrival_);
  last_arrival_ = time;
}

void ClusterEnv::finish_streaming() { MLCR_AUDIT_POINT(audit()); }

void ClusterEnv::crash(double time) {
  MLCR_CHECK(!down_ && time >= last_arrival_);
  down_ = true;
}

void ClusterEnv::recover(double time) {
  (void)time;
  down_ = false;
  MLCR_AUDIT_POINT(audit());
}
