// simlint driver: lints the given roots and exits non-zero when any rule
// fires. Run as a CTest over src/, bench/, tests/ and examples/ (see
// tools/simlint/CMakeLists.txt); CI's lint-strict job runs it with --layers
// --json --github over the full tree.
//
//   simlint --root <repo_root> [--list-rules] [--layers | --layers-only]
//           [--json <path>] [--github] [dir...]
//
//   --layers       also run the include-graph layering pass (whole tree)
//   --layers-only  run only the layering pass
//   --json <path>  write the machine-readable report (schema self-checked
//                  via obs::check_simlint_json before writing)
//   --github       emit GitHub Actions ::error annotations alongside the
//                  human-readable lines
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "obs/schema_check.hpp"
#include "simlint/layers.hpp"
#include "simlint/lint.hpp"

namespace {

// The layering pass always covers the whole architecture, independent of
// which roots the per-file rules were asked to scan.
const std::vector<std::string> kLayerRoots = {"src", "bench", "tests",
                                              "tools", "examples"};

}  // namespace

int main(int argc, char** argv) {
  std::string repo_root = ".";
  std::string json_path;
  std::vector<std::string> roots;
  bool list_rules = false;
  bool layers = false;
  bool layers_only = false;
  bool github = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc)
      repo_root = argv[++i];
    else if (arg == "--json" && i + 1 < argc)
      json_path = argv[++i];
    else if (arg == "--list-rules")
      list_rules = true;
    else if (arg == "--layers")
      layers = true;
    else if (arg == "--layers-only")
      layers_only = true;
    else if (arg == "--github")
      github = true;
    else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: simlint --root <repo_root> [--list-rules] "
                   "[--layers | --layers-only] [--json <path>] [--github] "
                   "[dir...]\n";
      return 0;
    } else
      roots.push_back(arg);
  }
  if (roots.empty()) roots = {"src", "bench", "tests"};

  if (list_rules) {
    for (const auto& rule : mlcr::simlint::rules())
      std::cout << rule.id << ": " << rule.description << "\n";
    for (const auto& rule : mlcr::simlint::layer_rules())
      std::cout << rule.id << ": " << rule.description << "\n";
    return 0;
  }

  std::vector<mlcr::simlint::Violation> violations;
  try {
    if (!layers_only) violations = mlcr::simlint::lint_tree(repo_root, roots);
    if (layers || layers_only)
      for (auto& v : mlcr::simlint::lint_layers(repo_root, kLayerRoots))
        violations.push_back(std::move(v));
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }

  for (const auto& v : violations) {
    std::cout << v.file << ":" << v.line << ": [" << v.rule << "] "
              << v.message << "\n";
    if (github)
      std::cout << "::error file=" << v.file << ",line=" << v.line
                << "::[" << v.rule << "] " << v.message << "\n";
  }

  if (!json_path.empty()) {
    const std::string report = mlcr::simlint::violations_to_json(violations);
    const std::vector<std::string> schema_errors =
        mlcr::obs::check_simlint_json(report);
    if (!schema_errors.empty()) {
      for (const auto& err : schema_errors)
        std::cerr << "simlint --json internal schema error: " << err << "\n";
      return 2;
    }
    std::ofstream os(json_path, std::ios::binary);
    if (!os.is_open()) {
      std::cerr << "simlint: cannot write " << json_path << "\n";
      return 2;
    }
    os << report << "\n";
  }

  if (!violations.empty()) {
    std::cout << violations.size() << " violation(s)\n";
    return 1;
  }
  return 0;
}
