// simlint driver: lints the given roots and exits non-zero when any rule
// fires. Run as a CTest over src/, bench/ and tests/ (see
// tools/simlint/CMakeLists.txt); CI fails on violations.
//
//   simlint --root <repo_root> [--list-rules] [dir...]
#include <iostream>
#include <string>
#include <vector>

#include "simlint/lint.hpp"

int main(int argc, char** argv) {
  std::string repo_root = ".";
  std::vector<std::string> roots;
  bool list_rules = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc)
      repo_root = argv[++i];
    else if (arg == "--list-rules")
      list_rules = true;
    else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: simlint --root <repo_root> [--list-rules] "
                   "[dir...]\n";
      return 0;
    } else
      roots.push_back(arg);
  }
  if (roots.empty()) roots = {"src", "bench", "tests"};

  if (list_rules) {
    for (const auto& rule : mlcr::simlint::rules())
      std::cout << rule.id << ": " << rule.description << "\n";
    return 0;
  }

  std::vector<mlcr::simlint::Violation> violations;
  try {
    violations = mlcr::simlint::lint_tree(repo_root, roots);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
  for (const auto& v : violations)
    std::cout << v.file << ":" << v.line << ": [" << v.rule << "] "
              << v.message << "\n";
  if (!violations.empty()) {
    std::cout << violations.size() << " violation(s)\n";
    return 1;
  }
  return 0;
}
