#include "simlint/lint.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <stdexcept>

#include "obs/json.hpp"
#include "simlint/locks.hpp"
#include "simlint/token.hpp"

namespace mlcr::simlint {

namespace {

[[nodiscard]] bool starts_with(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

[[nodiscard]] bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// --- Path scopes -----------------------------------------------------------
//
// Each rule declares where it applies. Scopes are prefix tests on the
// repo-relative path (always forward-slash separated).

bool anywhere(const std::string&) { return true; }
bool outside_util(const std::string& p) { return !starts_with(p, "src/util/"); }
bool sim_code(const std::string& p) {
  return starts_with(p, "src/") && outside_util(p);
}
bool metric_code(const std::string& p) {
  // Code whose output feeds metrics, traces or benchmark tables.
  return starts_with(p, "src/") || starts_with(p, "bench/");
}
bool sim_or_containers(const std::string& p) {
  return starts_with(p, "src/sim/") || starts_with(p, "src/containers/");
}
bool obs_code(const std::string& p) { return starts_with(p, "src/obs/"); }
bool fault_code(const std::string& p) {
  // Code that injects or reacts to faults: all randomness must arrive as a
  // stream split() off the episode seed, never a locally-invented seed.
  return starts_with(p, "src/faults/") || starts_with(p, "src/fleet/");
}
bool serve_logic(const std::string& p) {
  // Everything in src/ except the established allowed zones: src/util (the
  // wall-clock producer), src/obs (its own obs-wall-time rule), and the one
  // file implementing serve::WallClock.
  return sim_code(p) && !obs_code(p) && p != "src/serve/clock.cpp";
}
bool serve_obs_facade(const std::string& p) {
  // The serving layer records through serve::Telemetry (the concurrent
  // facade); only the facade's own implementation touches the raw
  // single-threaded obs types.
  return starts_with(p, "src/serve/") && p != "src/serve/telemetry.hpp" &&
         p != "src/serve/telemetry.cpp";
}

// --- Source preprocessing --------------------------------------------------

/// Blanks string literals and char literals, and either blanks comments too
/// (`keep_comments == false` — the form rule patterns scan) or keeps their
/// text (`keep_comments == true` — the form `simlint:allow` detection scans,
/// so allow-comments embedded in string literals never count). Line
/// structure is preserved either way.
[[nodiscard]] std::vector<std::string> blanked_lines(const std::string& source,
                                                     bool keep_comments) {
  std::string code = source;
  std::size_t i = 0;
  const std::size_t n = code.size();
  auto blank = [&](std::size_t from, std::size_t to) {
    for (std::size_t k = from; k < to && k < n; ++k)
      if (code[k] != '\n') code[k] = ' ';
  };
  while (i < n) {
    const char c = code[i];
    if (c == '/' && i + 1 < n && code[i + 1] == '/') {
      std::size_t end = code.find('\n', i);
      if (end == std::string::npos) end = n;
      if (!keep_comments) blank(i, end);
      i = end;
    } else if (c == '/' && i + 1 < n && code[i + 1] == '*') {
      std::size_t end = code.find("*/", i + 2);
      end = end == std::string::npos ? n : end + 2;
      if (!keep_comments) blank(i, end);
      i = end;
    } else if (c == 'R' && i + 1 < n && code[i + 1] == '"') {
      const std::size_t paren = code.find('(', i + 2);
      if (paren == std::string::npos) {
        ++i;
        continue;
      }
      const std::string delim = code.substr(i + 2, paren - (i + 2));
      std::size_t end = code.find(")" + delim + "\"", paren);
      end = end == std::string::npos ? n : end + delim.size() + 2;
      blank(i, end);
      i = end;
    } else if (c == '"' || c == '\'') {
      std::size_t j = i + 1;
      while (j < n && code[j] != c) j += code[j] == '\\' ? 2 : 1;
      blank(i, std::min(j + 1, n));
      i = std::min(j + 1, n);
    } else {
      ++i;
    }
  }
  std::vector<std::string> lines;
  std::istringstream is(code);
  std::string line;
  while (std::getline(is, line)) lines.push_back(line);
  return lines;
}

[[nodiscard]] std::vector<std::string> code_lines(const std::string& source) {
  return blanked_lines(source, /*keep_comments=*/false);
}

/// Comments kept, literals blanked — where suppression comments live.
[[nodiscard]] std::vector<std::string> comment_lines(
    const std::string& source) {
  return blanked_lines(source, /*keep_comments=*/true);
}

// --- Suppression -----------------------------------------------------------
//
// Each `simlint:allow(...)` comment becomes one entry; matching a violation
// marks it used, and entries still unused after filtering are themselves
// errors (unused-suppression) — stale allowances must not linger once the
// code they excused is gone.

struct SuppressionEntry {
  std::string rule;
  std::size_t line = 0;  ///< 1-based line of the comment itself
  bool file_level = false;
  bool used = false;
};

struct Suppressions {
  std::vector<SuppressionEntry> entries;

  [[nodiscard]] bool allowed(const std::string& rule, std::size_t line) {
    bool hit = false;
    for (SuppressionEntry& e : entries) {
      if (e.rule != rule) continue;
      // A line-level entry covers its own line and the line below it.
      if (e.file_level || e.line == line || e.line + 1 == line) {
        e.used = true;
        hit = true;
      }
    }
    return hit;
  }
};

[[nodiscard]] Suppressions collect_suppressions(
    const std::vector<std::string>& raw) {
  static const std::regex kAllow(
      R"(simlint:allow(-file)?\(([A-Za-z0-9_-]+)\))");
  Suppressions out;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    auto begin = std::sregex_iterator(raw[i].begin(), raw[i].end(), kAllow);
    for (auto it = begin; it != std::sregex_iterator(); ++it)
      out.entries.push_back({(*it)[2].str(), i + 1, (*it)[1].matched, false});
  }
  return out;
}

// --- Rule table ------------------------------------------------------------

using PathScope = bool (*)(const std::string&);

/// A rule that fires on any code line matching `pattern`.
struct LineRule {
  const char* id;
  const char* description;
  PathScope applies;
  const char* pattern;
  const char* message;
};

const LineRule kLineRules[] = {
    {"banned-random",
     "std::random_device / rand() / srand() — unseeded or global randomness "
     "breaks bit-identical replay",
     anywhere,
     R"(std::random_device|(^|[^\w:.>])(std\s*::\s*)?s?rand\s*\()",
     "use util::Rng (explicitly seeded, portable) instead of "
     "std::random_device / rand()"},
    {"banned-clock",
     "wall-clock reads (system_clock / steady_clock / high_resolution_clock) "
     "outside src/util — simulated time must come from the event loop",
     outside_util,
     R"(\b(system_clock|steady_clock|high_resolution_clock)\b)",
     "wall-clock time in simulation code breaks replay; if timing "
     "instrumentation is needed, put it behind an interface in util/"},
    {"banned-getenv",
     "getenv in simulator code — environment variables make results "
     "machine-dependent",
     sim_code,
     R"((^|[^\w:.])(std\s*::\s*)?getenv\s*\()",
     "configuration must flow through explicit config structs, not the "
     "process environment"},
    {"pointer-key",
     "pointer-valued keys in (unordered_)map/set — ordering and hashing by "
     "address varies run to run",
     anywhere,
     R"(\b(unordered_map|unordered_set|map|set)\s*<\s*(const\s+)?[A-Za-z_][\w:]*\s*\*)",
     "key the container by a stable id (ContainerId, FunctionTypeId, ...) "
     "instead of a pointer"},
    {"fault-rng-stream",
     "util::Rng constructed from a literal seed in src/faults or src/fleet — "
     "fault randomness must be a stream split() off the episode seed, or "
     "faults stop being a pure function of the episode",
     fault_code,
     R"(\bRng\s*(\w+\s*)?[({]\s*(0x[0-9A-Fa-f]+|[0-9]))",
     "derive the stream from the episode: split() the caller's Rng or "
     "forward a seed variable; a literal seed decouples fault injection "
     "from the episode seed and silently breaks replay"},
    {"fault-domain-stream",
     "default-constructed util::Rng in src/faults or src/fleet — domain "
     "crash sampling must draw from the injector's split stream, so an "
     "ad-hoc generator (implicit default seed) silently decorrelates the "
     "domain schedule from the episode",
     fault_code,
     R"(\bRng\s+\w*[A-Za-z0-9]\s*(;|\{\s*\}))",
     "one split stream per concern: take a util::Rng& (or a seed variable) "
     "from the caller and split() it — a default-constructed Rng hides the "
     "fixed default seed and breaks the zero-correlation replay oracle"},
    {"serve-clock-injection",
     "direct wall-time reads in service/simulation logic — the serving layer "
     "takes time from an injected serve::Clock, so the same code path runs "
     "live (WallClock) or deterministically replayed (SimClock)",
     serve_logic,
     R"(\b(wall_now_us|clock_gettime|gettimeofday)\s*\()",
     "inject a serve::Clock (SimClock for replay, WallClock for live "
     "serving) instead of reading wall time; src/serve/clock.cpp is the "
     "only wall-time consumer outside src/util"},
    {"obs-concurrent-registry",
     "direct MetricsRegistry / Tracer use in src/serve outside the telemetry "
     "facade — the raw obs types are single-threaded, so workers sharing one "
     "race on every record",
     serve_obs_facade,
     R"(\b(MetricsRegistry|Tracer)\b)",
     "serve code records through serve::Telemetry (ConcurrentMetricsRegistry "
     "slots + mutex-serialised trace emission); only src/serve/telemetry.* "
     "may touch the raw obs types"},
    {"obs-wall-time",
     "wall-time reads inside src/obs — the tracing layer is clock-free by "
     "contract (DESIGN.md, Observability): every timestamp is supplied by "
     "the caller",
     obs_code,
     R"(\b(wall_now_us|gettimeofday|clock_gettime|timespec_get|localtime(_r)?|gmtime(_r)?)\s*\()",
     "src/obs never reads clocks; sim-layer emitters take simulated time "
     "from the event loop and bench code stamps wall time via "
     "util::wall_now_us before calling into obs"},
};

// --- unordered-iteration ---------------------------------------------------
//
// Flags range-for / .begin() iteration over unordered_map/unordered_set
// members in metric-producing code (src/, bench/): their iteration order is
// implementation-defined, so anything folded from it (sums are safe only in
// exact arithmetic; evictions, argmax, output rows are never safe) can change
// across standard libraries or even runs. Member names are collected from the
// unit plus its paired header.

constexpr char kUnorderedIterId[] = "unordered-iteration";

[[nodiscard]] std::set<std::string> unordered_member_names(
    const std::vector<std::string>& code) {
  static const std::regex kDecl(
      R"(unordered_(?:map|set)\s*<[^;{}]*>\s+([A-Za-z_]\w*)\s*[;{=])");
  std::set<std::string> names;
  for (const auto& line : code) {
    auto begin = std::sregex_iterator(line.begin(), line.end(), kDecl);
    for (auto it = begin; it != std::sregex_iterator(); ++it)
      names.insert((*it)[1].str());
  }
  return names;
}

void check_unordered_iteration(const std::vector<std::string>& code,
                               const std::set<std::string>& names,
                               const std::string& rel_path,
                               std::vector<Violation>& out) {
  if (names.empty()) return;
  static const std::regex kRangeFor(R"(for\s*\([^:;()]*:\s*([A-Za-z_]\w*)\s*\))");
  static const std::regex kBegin(R"(\b([A-Za-z_]\w*)\s*\.\s*c?begin\s*\()");
  for (std::size_t i = 0; i < code.size(); ++i) {
    for (const auto* re : {&kRangeFor, &kBegin}) {
      auto begin = std::sregex_iterator(code[i].begin(), code[i].end(), *re);
      for (auto it = begin; it != std::sregex_iterator(); ++it) {
        if (names.count((*it)[1].str()) == 0) continue;
        out.push_back({rel_path, i + 1, kUnorderedIterId,
                       "iteration over unordered container '" +
                           (*it)[1].str() +
                           "' feeds metrics/traces; iterate a sorted view or "
                           "switch to std::map (or justify with "
                           "simlint:allow)"});
      }
    }
  }
}

// --- uninit-member ---------------------------------------------------------
//
// Heuristic: inside a struct/class body (at the body's own brace depth, so
// inline member functions are skipped), a scalar member declared without an
// initializer is flagged. Scoped to src/sim and src/containers, where plain
// data records flow through the simulator and an uninitialized field is
// silently nondeterministic.

constexpr char kUninitId[] = "uninit-member";

void check_uninit_members(const std::vector<std::string>& code,
                          const std::string& rel_path,
                          std::vector<Violation>& out) {
  static const std::regex kStructHead(
      R"(^\s*(template\s*<[^>]*>\s*)?(struct|class)\s+[A-Za-z_]\w*)");
  static const std::regex kEnumHead(R"(^\s*enum\b)");
  static const std::regex kScalarMember(
      R"(^\s*(?:mutable\s+)?(?:double|float|bool|char|short|int|long|unsigned|std::size_t|std::u?int(?:8|16|32|64)_t|std::ptrdiff_t|(?:containers::)?(?:ContainerId|FunctionTypeId|PackageId))\s+([A-Za-z_]\w*)\s*;)");

  int depth = 0;
  bool pending_struct = false;  // struct head seen, '{' not yet
  std::vector<int> body_depths;

  for (std::size_t i = 0; i < code.size(); ++i) {
    const std::string& line = code[i];
    const int depth_before = depth;
    const bool is_struct_head = std::regex_search(line, kStructHead) &&
                                !std::regex_search(line, kEnumHead);

    if (!body_depths.empty() && depth_before == body_depths.back()) {
      std::smatch m;
      if (std::regex_search(line, m, kScalarMember))
        out.push_back({rel_path, i + 1, kUninitId,
                       "scalar member '" + m[1].str() +
                           "' has no initializer; an uninitialized read is "
                           "nondeterministic — default it at the declaration"});
    }

    bool struct_opens = false;
    for (const char c : line) {
      if (c == '{') {
        ++depth;
        if ((is_struct_head && !struct_opens) || pending_struct) {
          body_depths.push_back(depth);
          struct_opens = true;
          pending_struct = false;
        }
      } else if (c == '}') {
        --depth;
        if (!body_depths.empty() && depth < body_depths.back())
          body_depths.pop_back();
      }
    }
    if (is_struct_head && !struct_opens &&
        line.find(';') == std::string::npos)
      pending_struct = true;
    else if (pending_struct && line.find(';') != std::string::npos)
      pending_struct = false;  // forward declaration spread over lines
  }
}

// --- missing-transition-check ----------------------------------------------
//
// Public pool/env state-transition functions must validate their
// preconditions or run the invariant auditor: the table below names them,
// and the rule fires when a listed function's body contains neither
// MLCR_CHECK* nor MLCR_AUDIT* nor assert(.

constexpr char kTransitionId[] = "missing-transition-check";

struct TransitionCheck {
  const char* file_suffix;
  const char* function;  ///< qualified name, e.g. "WarmPool::admit"
};

const TransitionCheck kTransitionChecks[] = {
    {"containers/pool.cpp", "WarmPool::admit"},
    {"containers/pool.cpp", "WarmPool::take"},
    {"containers/pool.cpp", "WarmPool::expire_older_than"},
    {"containers/pool.cpp", "WarmPool::invalidate_all"},
    {"sim/env.cpp", "ClusterEnv::offer"},
    {"sim/env.cpp", "ClusterEnv::step"},
    {"sim/env.cpp", "ClusterEnv::advance_idle"},
    {"sim/env.cpp", "ClusterEnv::finish_streaming"},
    {"sim/env.cpp", "ClusterEnv::crash"},
    {"sim/env.cpp", "ClusterEnv::recover"},
    {"fleet/fleet_env.cpp", "FleetEnv::run"},
};

void check_transitions(const std::vector<std::string>& code,
                       const std::string& rel_path,
                       std::vector<Violation>& out) {
  for (const TransitionCheck& tc : kTransitionChecks) {
    if (!ends_with(rel_path, tc.file_suffix)) continue;
    // Locate "Qualified::name(" possibly split from its parameter list.
    std::size_t def_line = 0;
    bool found = false;
    for (std::size_t i = 0; i < code.size() && !found; ++i) {
      const std::size_t pos = code[i].find(tc.function);
      if (pos == std::string::npos) continue;
      const std::size_t after = pos + std::string(tc.function).size();
      if (after < code[i].size() &&
          (std::isalnum(static_cast<unsigned char>(code[i][after])) != 0 ||
           code[i][after] == '_'))
        continue;  // prefix of a longer name
      def_line = i;
      found = true;
    }
    if (!found) {
      out.push_back({rel_path, 1, kTransitionId,
                     std::string("state-transition function ") + tc.function +
                         " not found; update the simlint transition table if "
                         "it moved"});
      continue;
    }
    // Scan from the definition to its body's closing brace.
    int depth = 0;
    bool in_body = false;
    bool has_check = false;
    std::size_t i = def_line;
    for (; i < code.size(); ++i) {
      // Update brace state first so a check on the opening-brace line (or a
      // whole one-line body) counts as inside the body.
      bool line_in_body = in_body;
      bool done = false;
      for (const char c : code[i]) {
        if (c == '{') {
          ++depth;
          in_body = true;
          line_in_body = true;
        } else if (c == '}') {
          --depth;
          if (in_body && depth == 0) {
            done = true;
            break;
          }
        }
      }
      if (line_in_body &&
          (code[i].find("MLCR_CHECK") != std::string::npos ||
           code[i].find("MLCR_AUDIT") != std::string::npos ||
           code[i].find("assert(") != std::string::npos))
        has_check = true;
      if (done) break;
    }
    if (!has_check)
      out.push_back({rel_path, def_line + 1, kTransitionId,
                     std::string(tc.function) +
                         " transitions pool/env state without MLCR_CHECK / "
                         "MLCR_AUDIT; validate the transition"});
  }
}

// --- router-route-check ----------------------------------------------------
//
// Every `Router::route()` definition in fleet/router.cpp must validate its
// inputs (MLCR_CHECK* or assert) before indexing into the fleet: route() is
// the fleet layer's only request-placement decision point, and an unchecked
// out-of-range node index corrupts per-node state silently. Unlike
// missing-transition-check this rule is not table-driven — it discovers every
// qualified route() definition so new Router implementations are covered the
// moment they are written.

constexpr char kRouterId[] = "router-route-check";

void check_router_routes(const std::vector<std::string>& code,
                         const std::string& rel_path,
                         std::vector<Violation>& out) {
  if (!ends_with(rel_path, "fleet/router.cpp")) return;
  static const std::regex kDef(R"(\b[A-Za-z_]\w*::route\s*\()");
  for (std::size_t i = 0; i < code.size(); ++i) {
    if (!std::regex_search(code[i], kDef)) continue;
    const std::size_t def_line = i;
    int depth = 0;
    bool in_body = false;
    bool has_check = false;
    bool is_definition = false;
    for (; i < code.size(); ++i) {
      bool line_in_body = in_body;
      bool done = false;
      for (const char c : code[i]) {
        if (c == '{') {
          ++depth;
          in_body = true;
          is_definition = true;
          line_in_body = true;
        } else if (c == '}') {
          --depth;
          if (in_body && depth == 0) {
            done = true;
            break;
          }
        }
      }
      if (line_in_body &&
          (code[i].find("MLCR_CHECK") != std::string::npos ||
           code[i].find("assert(") != std::string::npos))
        has_check = true;
      // A ';' before any '{' means this was a declaration or a qualified
      // call, not a definition — skip it.
      if (!in_body && code[i].find(';') != std::string::npos) break;
      if (done) break;
    }
    if (is_definition && !has_check)
      out.push_back({rel_path, def_line + 1, kRouterId,
                     "route() places a request without MLCR_CHECK / assert; "
                     "validate the fleet and any cursor/ring state before "
                     "returning a node index"});
  }
}

constexpr char kUnusedSuppressionId[] = "unused-suppression";

/// Rule ids consumed by the whole-tree layering pass (layers.cpp), which
/// honors suppressions itself; lint_source must not count them unused.
[[nodiscard]] bool is_layer_rule(const std::string& id) {
  return id == "layer-cycle" || id == "layer-upward";
}

}  // namespace

const std::vector<RuleInfo>& rules() {
  static const std::vector<RuleInfo> kRules = [] {
    std::vector<RuleInfo> out;
    for (const LineRule& r : kLineRules) out.push_back({r.id, r.description});
    out.push_back({kUnorderedIterId,
                   "range-for / begin() over unordered_map|set members in "
                   "metric-producing code (src/, bench/)"});
    out.push_back({kUninitId,
                   "scalar struct member without initializer in src/sim or "
                   "src/containers"});
    out.push_back({kTransitionId,
                   "public pool/env state transition without MLCR_CHECK / "
                   "MLCR_AUDIT / assert"});
    out.push_back({kRouterId,
                   "Router::route() definition in fleet/router.cpp without "
                   "MLCR_CHECK / assert on its placement inputs"});
    out.push_back({"lock-order",
                   "lock acquisition that violates the declared lock-order "
                   "table (rank-descending, descending indexed-family "
                   "indexes, or anything acquired over a leaf lock)"});
    out.push_back({"lock-double",
                   "a mutex acquired again while already held on the same "
                   "code path"});
    out.push_back({"lock-loop",
                   "indexed-family locks accumulated in a loop without prior "
                   "sort+unique of the indexes (ascending-order evidence)"});
    out.push_back({"bare-lock",
                   ".lock()/.unlock()/.try_lock() called directly on a mutex "
                   "instead of through an RAII guard"});
    out.push_back({kUnusedSuppressionId,
                   "a simlint:allow(...) comment that no longer suppresses "
                   "any violation (or names an unknown rule)"});
    return out;
  }();
  return kRules;
}

std::vector<Violation> lint_source(const std::string& source,
                                   const std::string& rel_path,
                                   const std::string& paired_header) {
  const std::vector<std::string> code = code_lines(source);
  Suppressions allow = collect_suppressions(comment_lines(source));

  std::vector<Violation> found;
  for (const LineRule& rule : kLineRules) {
    if (!rule.applies(rel_path)) continue;
    const std::regex re(rule.pattern);
    for (std::size_t i = 0; i < code.size(); ++i)
      if (std::regex_search(code[i], re))
        found.push_back({rel_path, i + 1, rule.id, rule.message});
  }

  if (metric_code(rel_path)) {
    std::set<std::string> names = unordered_member_names(code);
    if (!paired_header.empty())
      for (const auto& n : unordered_member_names(code_lines(paired_header)))
        names.insert(n);
    check_unordered_iteration(code, names, rel_path, found);
  }
  if (sim_or_containers(rel_path)) check_uninit_members(code, rel_path, found);
  check_transitions(code, rel_path, found);
  check_router_routes(code, rel_path, found);
  for (Violation& v : check_lock_discipline(tokenize(source), rel_path))
    found.push_back(std::move(v));

  std::vector<Violation> out;
  for (Violation& v : found)
    if (!allow.allowed(v.rule, v.line)) out.push_back(std::move(v));

  // Stale or misspelled allowances are errors themselves. These are not
  // subject to suppression: the fix is always to delete the comment.
  for (const SuppressionEntry& e : allow.entries) {
    if (e.used || is_layer_rule(e.rule)) continue;
    bool known = e.rule == kUnusedSuppressionId;
    for (const RuleInfo& r : rules()) known = known || r.id == e.rule;
    out.push_back({rel_path, e.line, kUnusedSuppressionId,
                   known ? "simlint:allow(" + e.rule +
                               ") no longer suppresses any violation; "
                               "remove the stale comment"
                         : "simlint:allow(" + e.rule +
                               ") names an unknown rule; fix the spelling "
                               "or remove it (see simlint --list-rules)"});
  }

  std::sort(out.begin(), out.end(), [](const Violation& a, const Violation& b) {
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
  return out;
}

namespace {

[[nodiscard]] std::string read_file(const std::filesystem::path& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is.is_open())
    throw std::runtime_error("simlint: cannot read " + path.string());
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

}  // namespace

std::vector<Violation> lint_file(const std::string& path,
                                 const std::string& rel_path) {
  const std::filesystem::path p(path);
  std::string header;
  if (p.extension() == ".cpp") {
    std::filesystem::path sibling = p;
    sibling.replace_extension(".hpp");
    if (std::filesystem::exists(sibling)) header = read_file(sibling);
  }
  return lint_source(read_file(p), rel_path, header);
}

std::vector<Violation> lint_tree(const std::string& repo_root,
                                 const std::vector<std::string>& roots) {
  namespace fs = std::filesystem;
  std::vector<Violation> out;
  std::vector<fs::path> files;
  for (const std::string& root : roots) {
    const fs::path base = fs::path(repo_root) / root;
    if (!fs::exists(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) continue;
      const auto ext = entry.path().extension();
      if (ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc")
        files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  for (const fs::path& f : files) {
    const std::string rel =
        fs::path(f).lexically_relative(repo_root).generic_string();
    for (Violation& v : lint_file(f.string(), rel)) out.push_back(std::move(v));
  }
  return out;
}

std::string violations_to_json(const std::vector<Violation>& violations) {
  std::ostringstream os;
  os << "{\"tool\":\"simlint\",\"count\":" << violations.size()
     << ",\"violations\":[";
  for (std::size_t i = 0; i < violations.size(); ++i) {
    const Violation& v = violations[i];
    if (i != 0) os << ",";
    os << "{\"file\":" << obs::json_quote(v.file) << ",\"line\":" << v.line
       << ",\"rule\":" << obs::json_quote(v.rule)
       << ",\"message\":" << obs::json_quote(v.message) << "}";
  }
  os << "]}";
  return os.str();
}

}  // namespace mlcr::simlint
