#include "simlint/locks.hpp"

#include <algorithm>
#include <cstdlib>
#include <optional>
#include <string>

namespace mlcr::simlint {

namespace {

constexpr char kOrderId[] = "lock-order";
constexpr char kDoubleId[] = "lock-double";
constexpr char kLoopId[] = "lock-loop";
constexpr char kBareId[] = "bare-lock";

[[nodiscard]] bool is_raii_guard(const std::string& t) {
  return t == "lock_guard" || t == "unique_lock" || t == "shared_lock" ||
         t == "scoped_lock";
}

[[nodiscard]] bool is_container_template(const std::string& t) {
  return t == "vector" || t == "deque" || t == "array";
}

[[nodiscard]] bool ends_with(const std::string& s, const char* suffix) {
  const std::string suf(suffix);
  return s.size() >= suf.size() &&
         s.compare(s.size() - suf.size(), suf.size(), suf) == 0;
}

/// Heuristic: does this identifier name a mutex (receiver of a bare
/// .lock()/.unlock() call)?
[[nodiscard]] bool mutex_like_name(const std::string& t) {
  return ends_with(t, "mutex") || ends_with(t, "mutex_") ||
         ends_with(t, "_mutex") || t == "mtx" || t == "mtx_";
}

/// One extracted acquisition target.
struct MutexRef {
  std::string key;  ///< normalized identity ("shard_mutexes_[0]", ...)
  const MutexRankInfo* info = nullptr;  ///< table row, if the mutex is ranked
  std::string index;                    ///< indexed-family subscript text
  bool literal_index = false;
  long literal_value = 0;
};

}  // namespace

const std::vector<MutexRankInfo>& lock_order_table() {
  // DESIGN.md §12 "Concurrency contract": the serving layer's declared order,
  // mirrored at runtime by util::lock_ranks (src/util/lock_audit.hpp).
  static const std::vector<MutexRankInfo> kTable = {
      {"shard_mutexes_", 10, /*indexed=*/true, /*leaf=*/false},
      {"inference_mutex_", 20, /*indexed=*/false, /*leaf=*/false},
      {"Shard::mutex", 30, /*indexed=*/false, /*leaf=*/true},
      {"telemetry_mutex_", 40, /*indexed=*/false, /*leaf=*/false},
      {"slot_mutex_", 50, /*indexed=*/false, /*leaf=*/true},
  };
  return kTable;
}

std::vector<Violation> check_lock_discipline(const std::vector<Token>& all,
                                             const std::string& rel_path) {
  // Macro bodies and includes carry no executable acquisitions; dropping
  // directive tokens keeps #define-heavy headers from confusing brace or
  // paren tracking.
  std::vector<Token> toks;
  toks.reserve(all.size());
  for (const Token& t : all)
    if (!t.in_directive) toks.push_back(t);
  const std::size_t n = toks.size();

  static const std::string kEmpty;
  const auto text = [&](std::size_t i) -> const std::string& {
    return i < n ? toks[i].text : kEmpty;
  };
  const auto is_ident = [&](std::size_t i) {
    return i < n && toks[i].kind == Token::Kind::kIdent;
  };
  // Index of the token matching the group opener at `i`, or n.
  const auto match_group = [&](std::size_t i, const char* open,
                               const char* close) -> std::size_t {
    int d = 0;
    for (std::size_t j = i; j < n; ++j) {
      if (text(j) == open) {
        ++d;
      } else if (text(j) == close) {
        --d;
        if (d == 0) return j;
      }
    }
    return n;
  };

  // --- mutex classification --------------------------------------------

  const auto classify = [&](std::size_t b,
                            std::size_t e) -> std::optional<MutexRef> {
    MutexRef ref;
    std::string joined;
    std::string prev_ident;
    std::string member;
    std::string receiver;
    bool any_ident = false;
    for (std::size_t i = b; i < e && i < n; ++i) {
      joined += toks[i].text;
      if (toks[i].kind == Token::Kind::kIdent) {
        any_ident = true;
        if (ref.info == nullptr) {
          for (const MutexRankInfo& row : lock_order_table()) {
            if (!row.indexed || toks[i].text != row.key) continue;
            ref.info = &row;
            if (i + 1 < e && text(i + 1) == "[") {
              const std::size_t close = match_group(i + 1, "[", "]");
              for (std::size_t k = i + 2; k < close && k < e; ++k)
                ref.index += toks[k].text;
              if (close == i + 3 &&
                  toks[i + 2].kind == Token::Kind::kNumber) {
                ref.literal_index = true;
                ref.literal_value =
                    std::strtol(toks[i + 2].text.c_str(), nullptr, 0);
              }
            }
            ref.key = row.key + "[" + ref.index + "]";
          }
        }
        prev_ident = toks[i].text;
      } else if ((toks[i].text == "." || toks[i].text == "->") &&
                 i + 1 < e && is_ident(i + 1)) {
        // Receiver of the member access: the identifier just before the
        // operator, skipping a balanced subscript (`shards_[s]->mutex`).
        std::size_t r = i;
        while (r > b && text(r - 1) == "]") {
          int d2 = 0;
          while (r > b) {
            --r;
            if (text(r) == "]") ++d2;
            if (text(r) == "[") {
              --d2;
              if (d2 == 0) break;
            }
          }
        }
        if (r > b && is_ident(r - 1)) receiver = toks[r - 1].text;
        member = toks[i + 1].text;
      }
    }
    if (!any_ident) return std::nullopt;
    if (ref.info != nullptr) return ref;
    const std::string name = member.empty() ? prev_ident : member;
    for (const MutexRankInfo& row : lock_order_table()) {
      if (!row.indexed && row.key == name) {
        ref.info = &row;
        ref.key = name;
        return ref;
      }
    }
    if (name == "mutex" && receiver.find("shard") != std::string::npos) {
      for (const MutexRankInfo& row : lock_order_table()) {
        if (row.key != "Shard::mutex") continue;
        ref.info = &row;
        ref.key = row.key;
        return ref;
      }
    }
    ref.key = joined;
    return ref;
  };

  // --- live-set simulation ---------------------------------------------

  struct Live {
    MutexRef ref;
    int depth;
    std::size_t line;
  };
  struct LockContainer {
    std::string name;
    int depth;
  };

  std::vector<Violation> out;
  std::vector<Live> live;
  std::vector<LockContainer> containers;
  std::vector<int> loop_brace_depths;  ///< brace depths of open loop bodies
  std::vector<std::size_t> pending_loop_bodies;  ///< token index of body '{'
  int braceless_loops = 0;
  int depth = 0;
  int paren_depth = 0;
  bool in_function = false;
  int function_body_depth = 0;
  bool seen_sort = false;
  bool seen_unique = false;

  const auto note = [&](const char* rule, std::size_t line, std::string msg) {
    out.push_back({rel_path, line, rule, std::move(msg)});
  };

  const auto acquire = [&](const MutexRef& ref, int at_depth,
                           std::size_t line, bool dedup_family) {
    if (dedup_family) {
      for (const Live& l : live)
        if (l.ref.info == ref.info && l.ref.index == "<loop>") return;
    }
    for (const Live& l : live) {
      if (ref.key.empty() || l.ref.key != ref.key) continue;
      note(kDoubleId, line,
           "'" + ref.key + "' is already held (acquired at line " +
               std::to_string(l.line) +
               "); a second acquisition self-deadlocks a non-recursive "
               "mutex");
      live.push_back({ref, at_depth, line});
      return;
    }
    for (const Live& l : live) {
      if (l.ref.info == nullptr || !l.ref.info->leaf) continue;
      note(kOrderId, line,
           "acquiring '" + ref.key + "' while leaf lock '" + l.ref.key +
               "' (line " + std::to_string(l.line) +
               ") is held; the lock-order table marks '" + l.ref.info->key +
               "' as a leaf — nothing may be acquired under it");
      live.push_back({ref, at_depth, line});
      return;
    }
    if (ref.info != nullptr) {
      for (const Live& l : live) {
        if (l.ref.info == nullptr) continue;
        if (l.ref.info->rank > ref.info->rank) {
          note(kOrderId, line,
               "'" + ref.key + "' (rank " + std::to_string(ref.info->rank) +
                   ") acquired while holding '" + l.ref.key + "' (rank " +
                   std::to_string(l.ref.info->rank) + ", line " +
                   std::to_string(l.line) +
                   "); the declared order is shard_mutexes_[i asc] < "
                   "inference_mutex_ < Shard::mutex < telemetry_mutex_ < "
                   "slot_mutex_");
          break;
        }
        if (l.ref.info == ref.info && ref.info->indexed) {
          if (l.ref.literal_index && ref.literal_index) {
            if (ref.literal_value < l.ref.literal_value)
              note(kOrderId, line,
                   "'" + ref.key + "' acquired after '" + l.ref.key +
                       "' (line " + std::to_string(l.line) +
                       "); members of an indexed family must be taken in "
                       "ascending index order");
          } else {
            note(kOrderId, line,
                 "two members of '" + ref.info->key +
                     "' held with indexes that cannot be proven ascending; "
                     "collect the indexes, sort+dedup them, and lock in "
                     "ascending order");
          }
          break;
        }
      }
    }
    live.push_back({ref, at_depth, line});
  };

  // Split the balanced group opening at `open` into top-level argument
  // spans (b, e) — exclusive of the delimiters.
  const auto split_args =
      [&](std::size_t open,
          std::size_t close) -> std::vector<std::pair<std::size_t, std::size_t>> {
    std::vector<std::pair<std::size_t, std::size_t>> args;
    int d = 0;
    std::size_t b = open + 1;
    for (std::size_t j = open; j <= close && j < n; ++j) {
      const std::string& s = text(j);
      if (s == "(" || s == "[" || s == "{" || s == "<") {
        ++d;
      } else if (s == ")" || s == "]" || s == "}" || s == ">") {
        --d;
        if (d == 0) {
          if (j > b) args.push_back({b, j});
          break;
        }
      } else if (s == "," && d == 1) {
        args.push_back({b, j});
        b = j + 1;
      }
    }
    return args;
  };

  const auto span_has_ident = [&](std::size_t b, std::size_t e,
                                  const char* name) {
    for (std::size_t j = b; j < e && j < n; ++j)
      if (toks[j].kind == Token::Kind::kIdent && toks[j].text == name)
        return true;
    return false;
  };

  const auto in_loop = [&] {
    return !loop_brace_depths.empty() || braceless_loops > 0;
  };

  // --- walk --------------------------------------------------------------

  for (std::size_t i = 0; i < n; ++i) {
    const Token& t = toks[i];

    if (t.kind == Token::Kind::kPunct) {
      const std::string& s = t.text;
      if (s == "(" || s == "[") {
        ++paren_depth;
      } else if (s == ")" || s == "]") {
        if (paren_depth > 0) --paren_depth;
      } else if (s == "{") {
        ++depth;
        const auto it = std::find(pending_loop_bodies.begin(),
                                  pending_loop_bodies.end(), i);
        if (it != pending_loop_bodies.end()) {
          loop_brace_depths.push_back(depth);
          pending_loop_bodies.erase(it);
        }
      } else if (s == "}") {
        --depth;
        live.erase(std::remove_if(live.begin(), live.end(),
                                  [&](const Live& l) {
                                    return l.depth > depth;
                                  }),
                   live.end());
        containers.erase(std::remove_if(containers.begin(), containers.end(),
                                        [&](const LockContainer& c) {
                                          return c.depth > depth;
                                        }),
                         containers.end());
        while (!loop_brace_depths.empty() &&
               loop_brace_depths.back() > depth)
          loop_brace_depths.pop_back();
        if (in_function && depth < function_body_depth) {
          in_function = false;
          seen_sort = false;
          seen_unique = false;
          braceless_loops = 0;
        }
      } else if (s == ";") {
        if (paren_depth == 0) braceless_loops = 0;
      }
      continue;
    }

    if (t.kind != Token::Kind::kIdent) continue;
    const std::string& s = t.text;

    // Ascending-order evidence for the loop rule (std::sort + std::unique
    // over the index container before the locking loop).
    if (s == "sort") seen_sort = true;
    if (s == "unique") seen_unique = true;

    // Loop heads: remember where the body starts so guard lifetimes and the
    // accumulation rule know they are inside a loop. The head's own tokens
    // are scanned normally (a lock fact inside a condition still counts).
    if ((s == "for" || s == "while") && text(i + 1) == "(") {
      const std::size_t head_end = match_group(i + 1, "(", ")");
      if (head_end < n) {
        if (text(head_end + 1) == "{")
          pending_loop_bodies.push_back(head_end + 1);
        else
          ++braceless_loops;
      }
      continue;
    }
    if (s == "do" && text(i + 1) == "{") {
      pending_loop_bodies.push_back(i + 1);
      continue;
    }

    // Function boundary: a `name(...)` head followed (after qualifiers,
    // trailing return, or a ctor init list) by `{` opens a function body;
    // evidence flags reset per function.
    if (!in_function && text(i + 1) == "(" && !is_raii_guard(s) &&
        s != "if" && s != "switch" && s != "catch" && s != "return" &&
        s != "sizeof") {
      const std::size_t close = match_group(i + 1, "(", ")");
      std::size_t k = close + 1;
      bool body = false;
      while (k < n) {
        const std::string& q = text(k);
        if (q == "{") {
          body = true;
          break;
        }
        if (q == "const" || q == "noexcept" || q == "override" ||
            q == "final" || q == "mutable" || q == "&" || q == "&&" ||
            q == "::" || q == "->" || q == "," || q == ":" || q == "<" ||
            q == ">" || q == "*" || toks[k].kind == Token::Kind::kIdent) {
          if (q == "noexcept" && text(k + 1) == "(") {
            k = match_group(k + 1, "(", ")") + 1;
            continue;
          }
          ++k;
          continue;
        }
        if (q == "(") {  // ctor init list member initializer
          k = match_group(k, "(", ")") + 1;
          continue;
        }
        break;  // ';', '=', ... — a declaration, not a definition
      }
      if (body) {
        in_function = true;
        function_body_depth = depth + 1;
        seen_sort = false;
        seen_unique = false;
      }
      // fall through: the head tokens still get scanned normally
    }

    // RAII guard declaration: lock_guard/unique_lock/shared_lock/scoped_lock
    // [<...>] name ( args ) — the acquisition facts.
    if (is_raii_guard(s)) {
      std::size_t k = i + 1;
      if (text(k) == "<") {
        const std::size_t g = match_group(k, "<", ">");
        if (g >= n) continue;
        k = g + 1;
      }
      if (is_ident(k) && (text(k + 1) == "(" || text(k + 1) == "{")) {
        const bool paren = text(k + 1) == "(";
        const std::size_t close =
            match_group(k + 1, paren ? "(" : "{", paren ? ")" : "}");
        const auto args = split_args(k + 1, close);
        bool deferred = false;
        for (const auto& [b, e] : args)
          if (span_has_ident(b, e, "defer_lock")) deferred = true;
        if (!deferred && !args.empty()) {
          const std::size_t arg_count = s == "scoped_lock" ? args.size() : 1;
          for (std::size_t a = 0; a < arg_count; ++a) {
            const auto& [b, e] = args[a];
            if (span_has_ident(b, e, "adopt_lock")) continue;
            if (auto ref = classify(b, e))
              acquire(*ref, depth, t.line, /*dedup_family=*/false);
          }
        }
      }
      continue;
    }

    // Deferred-container declaration: vector<...unique_lock...> name —
    // emplaced guards live until the container's scope closes.
    if (is_container_template(s) && text(i + 1) == "<") {
      const std::size_t g = match_group(i + 1, "<", ">");
      bool holds_guards = false;
      for (std::size_t j = i + 2; j < g && j < n; ++j)
        if (toks[j].kind == Token::Kind::kIdent && is_raii_guard(toks[j].text))
          holds_guards = true;
      if (holds_guards && is_ident(g + 1))
        containers.push_back({toks[g + 1].text, depth});
      continue;
    }

    // Accumulating acquisition: lock_container.emplace_back(mutex).
    if ((text(i + 1) == "." || text(i + 1) == "->") &&
        (text(i + 2) == "emplace_back" || text(i + 2) == "push_back") &&
        text(i + 3) == "(") {
      const LockContainer* container = nullptr;
      for (const LockContainer& c : containers)
        if (c.name == s) container = &c;
      if (container != nullptr) {
        const std::size_t close = match_group(i + 3, "(", ")");
        const auto args = split_args(i + 3, close);
        if (!args.empty()) {
          if (auto ref = classify(args[0].first, args[0].second)) {
            const bool accumulating_family = in_loop() &&
                                             ref->info != nullptr &&
                                             ref->info->indexed &&
                                             !ref->literal_index;
            if (accumulating_family) {
              if (!seen_sort || !seen_unique) {
                note(kLoopId, t.line,
                     "locking members of '" + ref->info->key +
                         "' in a loop without first sorting and deduplicating "
                         "the indexes; out-of-order acquisition across "
                         "workers deadlocks — sort+unique the shard list, "
                         "then lock ascending");
              } else {
                MutexRef family = *ref;
                family.index = "<loop>";
                family.key = family.info->key + "[<loop>]";
                acquire(family, container->depth, t.line,
                        /*dedup_family=*/true);
              }
            } else {
              acquire(*ref, container->depth, t.line, /*dedup_family=*/false);
            }
          }
        }
      }
      continue;
    }

    // Bare .lock()/.unlock()/.try_lock() on a mutex: RAII only.
    if ((text(i + 1) == "." || text(i + 1) == "->") &&
        (text(i + 2) == "lock" || text(i + 2) == "unlock" ||
         text(i + 2) == "try_lock") &&
        text(i + 3) == "(" && mutex_like_name(s)) {
      note(kBareId, toks[i + 2].line,
           "bare ." + text(i + 2) + "() on '" + s +
               "'; acquire through an RAII guard (lock_guard / unique_lock / "
               "shared_lock / scoped_lock) so every exit path releases");
    }
  }
  return out;
}

}  // namespace mlcr::simlint
