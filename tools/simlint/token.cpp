#include "simlint/token.hpp"

#include <algorithm>
#include <cctype>

namespace mlcr::simlint {

namespace {

[[nodiscard]] bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

[[nodiscard]] bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

[[nodiscard]] bool raw_string_prefix(const std::string& ident) {
  return ident == "R" || ident == "LR" || ident == "uR" || ident == "UR" ||
         ident == "u8R";
}

}  // namespace

std::vector<Token> tokenize(const std::string& src) {
  std::vector<Token> out;
  const std::size_t n = src.size();
  std::size_t i = 0;
  std::size_t line = 1;
  bool bol = true;  // only whitespace seen since the last newline
  bool in_directive = false;

  // Length of a line splice (backslash, optional CR, newline) at `at`.
  const auto splice_len = [&](std::size_t at) -> std::size_t {
    if (at >= n || src[at] != '\\') return 0;
    std::size_t j = at + 1;
    if (j < n && src[j] == '\r') ++j;
    if (j < n && src[j] == '\n') return j - at + 1;
    return 0;
  };
  const auto skip_splices = [&] {
    for (std::size_t len = splice_len(i); len != 0; len = splice_len(i)) {
      i += len;
      ++line;
    }
  };
  const auto emit = [&](Token::Kind kind, std::string text,
                        std::size_t at_line) {
    out.push_back({kind, std::move(text), at_line, in_directive});
    bol = false;
  };

  while (i < n) {
    skip_splices();
    if (i >= n) break;
    const char c = src[i];

    if (c == '\n') {
      ++line;
      ++i;
      bol = true;
      in_directive = false;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
      ++i;
      continue;
    }

    // Line comment — a trailing splice extends it to the next physical line.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      i += 2;
      for (;;) {
        skip_splices();
        if (i >= n || src[i] == '\n') break;
        ++i;
      }
      continue;
    }
    // Block comment — never nests; the first `*/` ends it.
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      i += 2;
      while (i < n && !(src[i] == '*' && i + 1 < n && src[i + 1] == '/')) {
        if (src[i] == '\n') ++line;
        ++i;
      }
      i = std::min(i + 2, n);
      continue;
    }

    if (bol && c == '#') {
      in_directive = true;
      emit(Token::Kind::kPunct, "#", line);
      ++i;
      continue;
    }

    if (ident_start(c)) {
      const std::size_t tok_line = line;
      std::string text;
      while (i < n) {
        skip_splices();
        if (i >= n || !ident_char(src[i])) break;
        text.push_back(src[i]);
        ++i;
      }
      // Raw string literal: no splicing inside — the delimiter match is on
      // the raw bytes, and `lock_guard` inside one is just characters.
      if (raw_string_prefix(text) && i < n && src[i] == '"') {
        const std::size_t open_paren = src.find('(', i + 1);
        if (open_paren != std::string::npos) {
          const std::string delim =
              src.substr(i + 1, open_paren - (i + 1));
          const std::string closer = ")" + delim + "\"";
          std::size_t end = src.find(closer, open_paren + 1);
          end = end == std::string::npos ? n : end + closer.size();
          text.append(src.begin() + static_cast<std::ptrdiff_t>(i),
                      src.begin() + static_cast<std::ptrdiff_t>(end));
          line += static_cast<std::size_t>(
              std::count(src.begin() + static_cast<std::ptrdiff_t>(i),
                         src.begin() + static_cast<std::ptrdiff_t>(end),
                         '\n'));
          i = end;
          emit(Token::Kind::kRawString, std::move(text), tok_line);
          continue;
        }
      }
      emit(Token::Kind::kIdent, std::move(text), tok_line);
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      const std::size_t tok_line = line;
      std::string text;
      while (i < n) {
        skip_splices();
        if (i >= n) break;
        const char d = src[i];
        const bool digit_sep =
            d == '\'' && i + 1 < n &&
            std::isalnum(static_cast<unsigned char>(src[i + 1])) != 0;
        if (ident_char(d) || d == '.' || digit_sep) {
          text.push_back(d);
          ++i;
        } else {
          break;
        }
      }
      emit(Token::Kind::kNumber, std::move(text), tok_line);
      continue;
    }

    if (c == '"' || c == '\'') {
      const std::size_t tok_line = line;
      const char quote = c;
      std::string text(1, quote);
      ++i;
      while (i < n && src[i] != quote) {
        const std::size_t len = splice_len(i);
        if (len != 0) {  // spliced literal continues on the next line
          i += len;
          ++line;
          continue;
        }
        if (src[i] == '\n') break;  // unterminated: recover at end of line
        if (src[i] == '\\' && i + 1 < n) {
          text.push_back(src[i]);
          text.push_back(src[i + 1]);
          i += 2;
          continue;
        }
        text.push_back(src[i]);
        ++i;
      }
      if (i < n && src[i] == quote) {
        text.push_back(quote);
        ++i;
      }
      emit(quote == '"' ? Token::Kind::kString : Token::Kind::kChar,
           std::move(text), tok_line);
      continue;
    }

    // Punctuation: keep `::` and `->` whole (the fact extractors read member
    // chains), everything else is a single character.
    const std::size_t tok_line = line;
    if (c == ':' && i + 1 < n && src[i + 1] == ':') {
      emit(Token::Kind::kPunct, "::", tok_line);
      i += 2;
      continue;
    }
    if (c == '-' && i + 1 < n && src[i + 1] == '>') {
      emit(Token::Kind::kPunct, "->", tok_line);
      i += 2;
      continue;
    }
    emit(Token::Kind::kPunct, std::string(1, c), tok_line);
    ++i;
  }
  return out;
}

}  // namespace mlcr::simlint
