// Lightweight C++ tokenizer for simlint's scope-aware analyses (lock
// discipline, include-graph layering). One pass over the raw source handles
// the lexical hazards that defeat line-regex scanning:
//
//   - line/block comments are dropped (block comments do not nest, exactly
//     as in C++ — `/* a /* b */ c` resumes tokenizing at `c`);
//   - string/char literals become single kString/kChar tokens, so a
//     `lock_guard` spelled inside a literal never produces an identifier;
//   - raw strings `R"delim(...)delim"` are matched by delimiter and kept as
//     one kRawString token; line splices inside them are literal text;
//   - backslash-newline line continuations are spliced everywhere else
//     (including inside `//` comments, which they extend), while every token
//     still records the physical line its first character sits on;
//   - preprocessor directives (`# ...` to the unspliced end of line) are
//     tokenized but flagged `in_directive`, so fact extractors can skip
//     macro bodies while the include scanner reads `#include` strings.
//
// No preprocessing or name lookup happens: this stays a lexical layer, just
// a trustworthy one for the analyses in locks.cpp and layers.cpp.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace mlcr::simlint {

struct Token {
  enum class Kind { kIdent, kNumber, kPunct, kString, kChar, kRawString };
  Kind kind = Kind::kPunct;
  std::string text;
  std::size_t line = 0;       ///< 1-based physical line of the first char
  bool in_directive = false;  ///< inside a `#...` preprocessor directive
};

/// Tokenize `source`. Never throws: malformed input (unterminated literals
/// or comments) is tokenized best-effort to the end of the file.
[[nodiscard]] std::vector<Token> tokenize(const std::string& source);

}  // namespace mlcr::simlint
