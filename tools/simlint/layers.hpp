// Include-graph layering checker (DESIGN.md §12).
//
// simlint builds the repo's quoted-include DAG with the tokenizer (so
// includes in comments, strings and raw strings never count) and enforces
// the layer order of the as-built architecture:
//
//   0 src/util
//   1 src/obs, src/faults          (event records / fault schedules are
//                                   foundational inputs to the simulator)
//   2 src/containers, src/nn
//   3 src/sim, src/rl
//   4 src/policies
//   5 src/core, src/fleet, src/fstartbench
//   6 src/serve
//   7 bench, tools, examples, tests
//
// A file may include its own layer or below; an include that reaches a
// *higher* layer is `layer-upward`, and any cycle in the resolved include
// graph is `layer-cycle` (reported at the include that closes the cycle).
// Angle-bracket includes (standard/system headers) and quoted includes that
// do not resolve inside the scanned tree are ignored.
//
// `// simlint:allow(layer-upward)` / `allow(layer-cycle)` suppressions are
// honored here directly; `lint_source` exempts these two ids from its
// unused-suppression accounting because the layer analysis runs as a
// separate whole-tree pass.
#pragma once

#include <string>
#include <vector>

#include "simlint/lint.hpp"

namespace mlcr::simlint {

/// One translation unit handed to the layering analysis.
struct LayerFile {
  std::string rel_path;  ///< repo-relative, forward-slash separated
  std::string source;
};

/// Metadata for the layering rules (layer-cycle, layer-upward) — kept out of
/// rules() because these run as a whole-tree pass, not per translation unit.
[[nodiscard]] const std::vector<RuleInfo>& layer_rules();

/// Layer rank of a repo-relative path; lower is more foundational. Paths
/// outside every known layer get the top rank (they may include anything).
[[nodiscard]] int layer_of(const std::string& rel_path);

/// Run the layering analysis over a set of files (includes are resolved only
/// against this set). Violations are sorted by (file, line, rule).
[[nodiscard]] std::vector<Violation> check_layers(
    const std::vector<LayerFile>& files);

/// Scan `roots` (relative to `repo_root`) for C++ sources and run
/// check_layers over them. Fixture trees (any path component `fixtures`)
/// are skipped — they contain deliberate violations.
[[nodiscard]] std::vector<Violation> lint_layers(
    const std::string& repo_root, const std::vector<std::string>& roots);

}  // namespace mlcr::simlint
