// simlint: a repo-specific static checker for the determinism and
// memory-safety contract of the MLCR simulator (see DESIGN.md, "Determinism
// contract"). It scans C++ sources lexically — no compiler front-end — and
// reports rule violations with file:line. Rules are table-driven: adding one
// is a ~20-line entry in lint.cpp, pinned by a fixture under
// tools/simlint/fixtures/.
//
// Suppression: append `// simlint:allow(<rule-id>)` to the flagged line (or
// the line above it), or `// simlint:allow-file(<rule-id>)` anywhere in the
// file to silence a rule for the whole file. Every suppression should carry a
// justification comment, and one that no longer suppresses anything (or
// names an unknown rule) is itself an error: unused-suppression.
//
// Beyond the line-lexical rules, simlint tokenizes each unit (token.hpp) and
// runs scope-aware analyses: the lock-discipline checker (locks.hpp) per
// translation unit, and the include-graph layering checker (layers.hpp) as a
// whole-tree pass.
#pragma once

#include <string>
#include <vector>

namespace mlcr::simlint {

/// One rule violation, reported as `file:line: [rule] message`.
struct Violation {
  std::string file;  ///< repo-relative path
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

struct RuleInfo {
  std::string id;
  std::string description;
};

/// Metadata for every registered rule (for --list-rules and fixture tests).
[[nodiscard]] const std::vector<RuleInfo>& rules();

/// Lint one translation unit given as text. `rel_path` selects path-scoped
/// rules (e.g. the uninitialized-member heuristic only runs under src/sim and
/// src/containers). `paired_header` is the content of the unit's sibling
/// header, if any; it contributes container-member declarations to the
/// unordered-iteration rule but is not itself linted by this call.
[[nodiscard]] std::vector<Violation> lint_source(
    const std::string& source, const std::string& rel_path,
    const std::string& paired_header = {});

/// Lint a file on disk; reads the paired .hpp next to a .cpp automatically.
[[nodiscard]] std::vector<Violation> lint_file(const std::string& path,
                                               const std::string& rel_path);

/// Recursively lint every .hpp/.cpp under `roots` (paths relative to
/// `repo_root`), reporting repo-relative file names, sorted by (file, line).
[[nodiscard]] std::vector<Violation> lint_tree(
    const std::string& repo_root, const std::vector<std::string>& roots);

/// Serialize violations as the machine-readable report `--json` emits:
///   {"tool": "simlint", "count": N,
///    "violations": [{"file", "line", "rule", "message"}*]}
/// The schema is validated by obs::check_simlint_json (and by simlint itself
/// before writing the report).
[[nodiscard]] std::string violations_to_json(
    const std::vector<Violation>& violations);

}  // namespace mlcr::simlint
