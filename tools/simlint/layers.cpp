#include "simlint/layers.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <regex>
#include <sstream>
#include <stdexcept>

#include "simlint/token.hpp"

namespace mlcr::simlint {

namespace {

constexpr char kCycleId[] = "layer-cycle";
constexpr char kUpwardId[] = "layer-upward";

struct LayerSpec {
  const char* prefix;
  int layer;
};

// The as-built layer order; see layers.hpp for the rationale. obs/faults sit
// below sim because event records and fault schedules are inputs the
// simulator consumes, not instrumentation layered on top of it.
const LayerSpec kLayers[] = {
    {"src/util/", 0},        {"src/obs/", 1},    {"src/faults/", 1},
    {"src/containers/", 2},  {"src/nn/", 2},     {"src/sim/", 3},
    {"src/rl/", 3},          {"src/policies/", 4}, {"src/core/", 5},
    {"src/fleet/", 5},       {"src/fstartbench/", 5}, {"src/serve/", 6},
    {"bench/", 7},           {"tools/", 7},      {"examples/", 7},
    {"tests/", 7},
};

constexpr int kTopLayer = 8;

[[nodiscard]] bool starts_with(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

struct Include {
  std::size_t line = 0;
  std::string target;
};

/// Quoted `#include "..."` directives; angle includes are not tokenized as
/// strings and so fall out naturally.
[[nodiscard]] std::vector<Include> quoted_includes(const std::string& source) {
  const std::vector<Token> toks = tokenize(source);
  std::vector<Include> out;
  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    if (toks[i].text != "#" || !toks[i].in_directive) continue;
    if (toks[i + 1].kind != Token::Kind::kIdent ||
        toks[i + 1].text != "include")
      continue;
    if (toks[i + 2].kind != Token::Kind::kString) continue;
    const std::string& quoted = toks[i + 2].text;
    if (quoted.size() < 2) continue;
    out.push_back({toks[i + 2].line, quoted.substr(1, quoted.size() - 2)});
  }
  return out;
}

/// Resolve a quoted include against the scanned set, mirroring the build's
/// include directories: the includer's own directory first, then the `src/`
/// and `tools/` roots, then repo-relative. Unresolved includes are ignored.
[[nodiscard]] std::string resolve_include(
    const std::string& includer_rel, const std::string& target,
    const std::map<std::string, std::size_t>& known) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::path(includer_rel).parent_path();
  const std::string candidates[] = {
      (dir / target).lexically_normal().generic_string(),
      (fs::path("src") / target).lexically_normal().generic_string(),
      (fs::path("tools") / target).lexically_normal().generic_string(),
      fs::path(target).lexically_normal().generic_string(),
  };
  for (const std::string& c : candidates)
    if (known.count(c) != 0) return c;
  return {};
}

/// Local suppression test (same spelling/semantics as lint_source): a
/// `simlint:allow(<rule>)` on the flagged line or the line above, or an
/// `allow-file` anywhere in the file.
[[nodiscard]] bool layer_allowed(const std::vector<std::string>& raw,
                                 const std::string& rule, std::size_t line) {
  static const std::regex kAllow(
      R"(simlint:allow(-file)?\(([A-Za-z0-9_-]+)\))");
  for (std::size_t i = 0; i < raw.size(); ++i) {
    auto begin = std::sregex_iterator(raw[i].begin(), raw[i].end(), kAllow);
    for (auto it = begin; it != std::sregex_iterator(); ++it) {
      if ((*it)[2].str() != rule) continue;
      if ((*it)[1].matched) return true;  // allow-file
      if (i + 1 == line || i + 2 == line) return true;
    }
  }
  return false;
}

[[nodiscard]] std::vector<std::string> split_lines(const std::string& source) {
  std::vector<std::string> lines;
  std::istringstream is(source);
  std::string line;
  while (std::getline(is, line)) lines.push_back(line);
  return lines;
}

}  // namespace

const std::vector<RuleInfo>& layer_rules() {
  static const std::vector<RuleInfo> kRules = {
      {kCycleId,
       "cycle in the resolved quoted-include graph (reported at the include "
       "that closes the cycle)"},
      {kUpwardId,
       "quoted include that reaches a higher architectural layer than the "
       "including file"},
  };
  return kRules;
}

int layer_of(const std::string& rel_path) {
  for (const LayerSpec& spec : kLayers)
    if (starts_with(rel_path, spec.prefix)) return spec.layer;
  return kTopLayer;
}

std::vector<Violation> check_layers(const std::vector<LayerFile>& files) {
  std::map<std::string, std::size_t> index;
  for (std::size_t i = 0; i < files.size(); ++i)
    index.emplace(files[i].rel_path, i);

  struct Edge {
    std::size_t to = 0;
    std::size_t line = 0;
  };
  std::vector<std::vector<Edge>> adj(files.size());
  std::vector<std::vector<std::string>> raw(files.size());
  std::vector<Violation> out;

  for (std::size_t i = 0; i < files.size(); ++i) {
    raw[i] = split_lines(files[i].source);
    for (const Include& inc : quoted_includes(files[i].source)) {
      const std::string resolved =
          resolve_include(files[i].rel_path, inc.target, index);
      if (resolved.empty()) continue;
      const std::size_t j = index.at(resolved);
      adj[i].push_back({j, inc.line});
      if (layer_of(files[j].rel_path) > layer_of(files[i].rel_path) &&
          !layer_allowed(raw[i], kUpwardId, inc.line)) {
        out.push_back(
            {files[i].rel_path, inc.line, kUpwardId,
             "layer " + std::to_string(layer_of(files[i].rel_path)) +
                 " file includes '" + files[j].rel_path + "' (layer " +
                 std::to_string(layer_of(files[j].rel_path)) +
                 "); dependencies must point downward — move the shared "
                 "piece to a lower layer or invert the dependency"});
      }
    }
  }

  // Cycle detection: DFS with tricolor marking over the sorted-by-caller file
  // order; every back edge closes exactly one reported cycle.
  enum class Color { kWhite, kGray, kBlack };
  std::vector<Color> color(files.size(), Color::kWhite);
  std::vector<std::size_t> path;

  const std::function<void(std::size_t)> dfs = [&](std::size_t u) {
    color[u] = Color::kGray;
    path.push_back(u);
    for (const Edge& e : adj[u]) {
      if (color[e.to] == Color::kGray) {
        std::string chain;
        const auto it = std::find(path.begin(), path.end(), e.to);
        for (auto p = it; p != path.end(); ++p)
          chain += files[*p].rel_path + " -> ";
        chain += files[e.to].rel_path;
        if (!layer_allowed(raw[u], kCycleId, e.line))
          out.push_back({files[u].rel_path, e.line, kCycleId,
                         "include cycle: " + chain +
                             "; break the cycle with a forward declaration "
                             "or by splitting the header"});
      } else if (color[e.to] == Color::kWhite) {
        dfs(e.to);
      }
    }
    path.pop_back();
    color[u] = Color::kBlack;
  };
  for (std::size_t i = 0; i < files.size(); ++i)
    if (color[i] == Color::kWhite) dfs(i);

  std::sort(out.begin(), out.end(),
            [](const Violation& a, const Violation& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return out;
}

std::vector<Violation> lint_layers(const std::string& repo_root,
                                   const std::vector<std::string>& roots) {
  namespace fs = std::filesystem;
  std::vector<fs::path> paths;
  for (const std::string& root : roots) {
    const fs::path base = fs::path(repo_root) / root;
    if (!fs::exists(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) continue;
      const auto ext = entry.path().extension();
      if (ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc")
        paths.push_back(entry.path());
    }
  }
  std::sort(paths.begin(), paths.end());

  std::vector<LayerFile> files;
  for (const fs::path& p : paths) {
    const std::string rel = p.lexically_relative(repo_root).generic_string();
    if (rel.find("fixtures/") != std::string::npos)
      continue;  // fixture trees contain deliberate violations
    std::ifstream is(p, std::ios::binary);
    if (!is.is_open())
      throw std::runtime_error("simlint: cannot read " + p.string());
    std::ostringstream os;
    os << is.rdbuf();
    files.push_back({rel, os.str()});
  }
  return check_layers(files);
}

}  // namespace mlcr::simlint
