// Lock-discipline checker over the simlint tokenizer (DESIGN.md §12).
//
// Per function, the checker extracts every lock acquisition — RAII guards
// (`lock_guard` / `unique_lock` / `shared_lock` / `scoped_lock`, including
// `std::defer_lock` which acquires nothing) and deferred-container
// accumulation (`locks.emplace_back(mutex)` into a vector of guards) — and
// simulates the live set against brace scopes. Acquisitions are checked
// against the declared lock-order table, which mirrors DESIGN.md §11's
// locking model for the serving layer:
//
//   shard_mutexes_[i] < shard_mutexes_[j] (i < j) < inference_mutex_
//                                                 < Shard::mutex (leaf)
//
// Index shard locks are *leaves*: acquiring anything while one is held is an
// ordering violation. Mutexes the table does not name carry no rank — they
// are still covered by the double-acquisition and bare-call rules, so the
// checker runs over the whole tree (src/, tests/, bench/, examples/), not
// just src/serve.
//
// Rules:
//   lock-order   rank-descending acquisition, descending literal indexes
//                within an indexed family, or any acquisition over a leaf
//   lock-double  the same mutex acquired again while already held
//   lock-loop    accumulating indexed-family locks in a loop without prior
//                sort+unique (ascending-order evidence) in the function
//   bare-lock    .lock()/.unlock()/.try_lock() called directly on a mutex
//                instead of through an RAII guard
//
// The static table is cross-checked at runtime by util::LockOrderValidator
// (src/util/lock_audit.hpp), whose registered ranks encode the same order.
#pragma once

#include <string>
#include <vector>

#include "simlint/lint.hpp"
#include "simlint/token.hpp"

namespace mlcr::simlint {

/// One row of the declared lock-order table. Lower rank = acquired earlier.
/// `indexed` rows are mutex families (`name[i]`) whose members must be taken
/// in ascending index order; a `leaf` must be the innermost lock held.
struct MutexRankInfo {
  std::string key;
  int rank = 0;
  bool indexed = false;
  bool leaf = false;
};

/// The declared table (exposed so tests and docs can pin it against
/// DESIGN.md §11 and the runtime validator's registered ranks).
[[nodiscard]] const std::vector<MutexRankInfo>& lock_order_table();

/// Run the lock-discipline analysis over one tokenized translation unit.
[[nodiscard]] std::vector<Violation> check_lock_discipline(
    const std::vector<Token>& tokens, const std::string& rel_path);

}  // namespace mlcr::simlint
