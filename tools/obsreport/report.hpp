// obsreport core: parse a flight-recorder snapshot JSONL file (the format
// serve::Telemetry exports and obs::check_snapshot_jsonl validates), render
// a per-snapshot SLO table, and gate on breaches — both the breaches the
// telemetry plane recorded online and any extra thresholds applied offline
// from the command line. A library so tests can pin the gating logic; the
// binary wraps it as the CLI CI's serve-telemetry-smoke job runs.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "obs/slo.hpp"

namespace mlcr::obsreport {

struct ReportOptions {
  /// Offline thresholds re-applied to every snapshot's SLO block. Defaults
  /// are fully permissive; window_s is ignored (the snapshots carry their
  /// own window).
  obs::SloConfig slo;
  /// Also fail on breaches the telemetry plane recorded online (snapshot
  /// "breaches" arrays). On by default: a recorded breach is a breach.
  bool gate_recorded = true;
};

struct SnapshotRow {
  double t = 0.0;
  obs::SloReport slo;  ///< as recorded, breaches re-evaluated per options
};

struct Report {
  /// Schema problems from obs::check_snapshot_jsonl (any -> invalid).
  std::vector<std::string> schema_errors;
  /// One "snapshot N (t=...): <breach>" line per gated violation.
  std::vector<std::string> breaches;
  std::vector<SnapshotRow> rows;

  [[nodiscard]] bool ok() const noexcept {
    return schema_errors.empty() && breaches.empty();
  }
};

/// Parse + validate + gate. Never throws on bad input.
[[nodiscard]] Report analyze_snapshots(const std::string& jsonl_text,
                                       const ReportOptions& options);

/// Human-readable table of `report.rows` (one line per snapshot) plus the
/// breach list, deterministic.
[[nodiscard]] std::string render_report(const Report& report);

}  // namespace mlcr::obsreport
