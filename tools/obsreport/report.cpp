#include "obsreport/report.hpp"

#include <cmath>
#include <sstream>

#include "obs/json.hpp"
#include "obs/schema_check.hpp"
#include "obs/trace_event.hpp"

namespace mlcr::obsreport {

namespace {

using obs::JsonValue;

[[nodiscard]] double number_or(const JsonValue* v, double fallback) {
  if (v == nullptr || v->type != JsonValue::Type::kNumber ||
      !std::isfinite(v->number))
    return fallback;
  return v->number;
}

[[nodiscard]] std::uint64_t count_or_zero(const JsonValue* v) {
  const double n = number_or(v, 0.0);
  return n <= 0.0 ? 0 : static_cast<std::uint64_t>(n);
}

[[nodiscard]] SnapshotRow parse_row(const JsonValue& root) {
  SnapshotRow row;
  row.t = number_or(root.find("t"), 0.0);
  const JsonValue* slo = root.find("slo");
  if (slo == nullptr || slo->type != JsonValue::Type::kObject) return row;
  obs::SloReport& r = row.slo;
  r.window_s = number_or(slo->find("window_s"), 0.0);
  r.submitted = count_or_zero(slo->find("submitted"));
  r.routed = count_or_zero(slo->find("routed"));
  r.rejected = count_or_zero(slo->find("rejected"));
  r.lost = count_or_zero(slo->find("lost"));
  r.route_p50_s = number_or(slo->find("route_p50_s"), 0.0);
  r.route_p95_s = number_or(slo->find("route_p95_s"), 0.0);
  r.route_p99_s = number_or(slo->find("route_p99_s"), 0.0);
  r.e2e_p50_s = number_or(slo->find("e2e_p50_s"), 0.0);
  r.e2e_p95_s = number_or(slo->find("e2e_p95_s"), 0.0);
  r.e2e_p99_s = number_or(slo->find("e2e_p99_s"), 0.0);
  r.goodput = number_or(slo->find("goodput"), 1.0);
  r.rejection_rate = number_or(slo->find("rejection_rate"), 0.0);
  r.queue_depth_max = number_or(slo->find("queue_depth_max"), 0.0);
  r.loss_rate = number_or(slo->find("loss_rate"), 0.0);
  r.retry_pressure = number_or(slo->find("retry_pressure"), 0.0);
  const JsonValue* breaches = slo->find("breaches");
  if (breaches != nullptr && breaches->type == JsonValue::Type::kArray)
    for (const JsonValue& b : breaches->array)
      if (b.type == JsonValue::Type::kString && !b.string.empty())
        r.breaches.push_back(b.string);
  return row;
}

}  // namespace

Report analyze_snapshots(const std::string& jsonl_text,
                         const ReportOptions& options) {
  Report report;
  report.schema_errors = obs::check_snapshot_jsonl(jsonl_text);
  if (!report.schema_errors.empty()) return report;

  std::size_t begin = 0;
  while (begin <= jsonl_text.size()) {
    std::size_t end = jsonl_text.find('\n', begin);
    if (end == std::string::npos) end = jsonl_text.size();
    const std::string line = jsonl_text.substr(begin, end - begin);
    begin = end + 1;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    JsonValue root;
    std::string parse_error;
    if (!parse_json(line, root, parse_error)) continue;  // schema pass caught
    report.rows.push_back(parse_row(root));
  }

  for (std::size_t i = 0; i < report.rows.size(); ++i) {
    const SnapshotRow& row = report.rows[i];
    const std::string at = "snapshot " + std::to_string(i) +
                           " (t=" + obs::format_number(row.t) + "): ";
    if (options.gate_recorded)
      for (const std::string& b : row.slo.breaches)
        report.breaches.push_back(at + "recorded: " + b);
    for (const std::string& b : obs::slo_breaches(options.slo, row.slo))
      report.breaches.push_back(at + b);
  }
  return report;
}

std::string render_report(const Report& report) {
  std::ostringstream os;
  for (const std::string& err : report.schema_errors)
    os << "schema: " << err << "\n";
  os << "snapshots: " << report.rows.size() << "\n";
  if (!report.rows.empty())
    os << "  #      t   sub  rout   rej  lost   e2e_p50   e2e_p95   e2e_p99"
          "  goodput  rej_rate  qmax  loss  retry\n";
  for (std::size_t i = 0; i < report.rows.size(); ++i) {
    const SnapshotRow& row = report.rows[i];
    const obs::SloReport& s = row.slo;
    os << "  " << i << "  " << obs::format_number(row.t) << "  "
       << s.submitted << "  " << s.routed << "  " << s.rejected << "  "
       << s.lost << "  " << obs::format_number(s.e2e_p50_s) << "  "
       << obs::format_number(s.e2e_p95_s) << "  "
       << obs::format_number(s.e2e_p99_s) << "  "
       << obs::format_number(s.goodput) << "  "
       << obs::format_number(s.rejection_rate) << "  "
       << obs::format_number(s.queue_depth_max) << "  "
       << obs::format_number(s.loss_rate) << "  "
       << obs::format_number(s.retry_pressure) << "\n";
  }
  for (const std::string& b : report.breaches) os << "BREACH " << b << "\n";
  return os.str();
}

}  // namespace mlcr::obsreport
