// obsreport: render flight-recorder snapshot JSONL (serve::Telemetry's
// export) and gate on SLO breaches for CI.
//
//   obsreport <snapshots.jsonl> [--summary]
//             [--max-route-p95 S] [--max-e2e-p99 S] [--min-goodput F]
//             [--max-rejection-rate F] [--max-queue-depth D]
//             [--max-loss-rate F] [--max-retry-pressure F]
//             [--no-recorded-gate]
//
// Threshold flags re-evaluate every snapshot offline on top of whatever the
// telemetry plane recorded online; --no-recorded-gate ignores the recorded
// "breaches" arrays (render-only triage of a known-bad run). Exit 0 when
// the file is schema-valid and nothing breaches, 1 on schema errors or any
// breach, 2 on usage/IO errors.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "obsreport/report.hpp"

namespace {

[[nodiscard]] bool parse_double(const char* text, double& out) {
  char* end = nullptr;
  out = std::strtod(text, &end);
  return end != nullptr && *end == '\0';
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  bool summary = false;
  mlcr::obsreport::ReportOptions options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    double* threshold = nullptr;
    if (arg == "--max-route-p95")
      threshold = &options.slo.max_route_p95_s;
    else if (arg == "--max-e2e-p99")
      threshold = &options.slo.max_e2e_p99_s;
    else if (arg == "--min-goodput")
      threshold = &options.slo.min_goodput;
    else if (arg == "--max-rejection-rate")
      threshold = &options.slo.max_rejection_rate;
    else if (arg == "--max-queue-depth")
      threshold = &options.slo.max_queue_depth;
    else if (arg == "--max-loss-rate")
      threshold = &options.slo.max_loss_rate;
    else if (arg == "--max-retry-pressure")
      threshold = &options.slo.max_retry_pressure;

    if (threshold != nullptr) {
      if (i + 1 >= argc || !parse_double(argv[++i], *threshold)) {
        std::cerr << "obsreport: " << arg << " needs a numeric value\n";
        return 2;
      }
    } else if (arg == "--summary") {
      summary = true;
    } else if (arg == "--no-recorded-gate") {
      options.gate_recorded = false;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: obsreport <snapshots.jsonl> [--summary] "
                   "[--max-route-p95 S] [--max-e2e-p99 S] [--min-goodput F] "
                   "[--max-rejection-rate F] [--max-queue-depth D] "
                   "[--max-loss-rate F] [--max-retry-pressure F] "
                   "[--no-recorded-gate]\n";
      return 0;
    } else if (path.empty()) {
      path = arg;
    } else {
      std::cerr << "obsreport: unexpected argument '" << arg << "'\n";
      return 2;
    }
  }
  if (path.empty()) {
    std::cerr << "obsreport: no snapshot file given\n";
    return 2;
  }

  std::ifstream is(path, std::ios::binary);
  if (!is.is_open()) {
    std::cerr << "obsreport: cannot read " << path << "\n";
    return 2;
  }
  std::ostringstream buf;
  buf << is.rdbuf();

  const mlcr::obsreport::Report report =
      mlcr::obsreport::analyze_snapshots(buf.str(), options);
  if (summary || !report.ok())
    std::cout << mlcr::obsreport::render_report(report);
  else
    std::cout << "snapshots: " << report.rows.size() << ", no SLO breach\n";
  return report.ok() ? 0 : 1;
}
