#include "benchdiff/diff.hpp"

#include <cmath>
#include <cstdio>

#include "obs/json.hpp"
#include "obs/schema_check.hpp"

namespace mlcr::benchdiff {

namespace {

/// Relative change of `candidate` vs `baseline`, signed so positive is
/// better. `higher_is_better` flips the sign for wall-time-like quantities.
[[nodiscard]] double relative_change(double baseline, double candidate,
                                     bool higher_is_better) {
  if (baseline == 0.0) return 0.0;
  const double change = (candidate - baseline) / std::abs(baseline);
  return higher_is_better ? change : -change;
}

[[nodiscard]] MetricDelta make_delta(const std::string& name, double baseline,
                                     double candidate, bool higher_is_better,
                                     double threshold, bool gates) {
  MetricDelta d;
  d.name = name;
  d.baseline = baseline;
  d.candidate = candidate;
  d.change = relative_change(baseline, candidate, higher_is_better);
  d.regressed = gates && d.change < -threshold;
  return d;
}

[[nodiscard]] double number_field(const obs::JsonValue& root,
                                  const std::string& key) {
  const obs::JsonValue* v = root.find(key);
  return v != nullptr ? v->number : 0.0;
}

}  // namespace

DiffReport diff_bench_json(const std::string& baseline_text,
                           const std::string& candidate_text,
                           const DiffOptions& options) {
  DiffReport report;
  for (const auto& [label, text] :
       {std::pair<const char*, const std::string&>{"baseline", baseline_text},
        {"candidate", candidate_text}})
    for (const std::string& e : obs::check_bench_json(text))
      report.errors.push_back(std::string(label) + ": " + e);
  if (!report.ok()) return report;

  obs::JsonValue base, cand;
  std::string error;
  // The schema check above already parsed both successfully.
  (void)obs::parse_json(baseline_text, base, error);
  (void)obs::parse_json(candidate_text, cand, error);

  report.bench = base.find("bench")->string;
  if (cand.find("bench")->string != report.bench) {
    report.errors.push_back("bench name mismatch: baseline is \"" +
                            report.bench + "\", candidate is \"" +
                            cand.find("bench")->string + "\"");
    return report;
  }

  report.deltas.push_back(make_delta(
      "events_per_sec", number_field(base, "events_per_sec"),
      number_field(cand, "events_per_sec"), /*higher_is_better=*/true,
      options.threshold, /*gates=*/true));
  report.deltas.push_back(make_delta(
      "wall_ms", number_field(base, "wall_ms"), number_field(cand, "wall_ms"),
      /*higher_is_better=*/false, options.threshold, /*gates=*/true));

  // Metrics present in both files, in baseline order — informational only
  // (a bench metric like "lost invocations" has no universal direction).
  const obs::JsonValue* base_metrics = base.find("metrics");
  const obs::JsonValue* cand_metrics = cand.find("metrics");
  for (const auto& [key, v] : base_metrics->object) {
    const obs::JsonValue* other = cand_metrics->find(key);
    if (other == nullptr) continue;
    report.deltas.push_back(make_delta("metrics." + key, v.number,
                                       other->number,
                                       /*higher_is_better=*/true,
                                       options.threshold, /*gates=*/false));
  }

  for (const MetricDelta& d : report.deltas)
    if (d.regressed) report.regression = true;
  return report;
}

std::string format_report(const DiffReport& report) {
  std::string out;
  if (!report.ok()) {
    for (const std::string& e : report.errors) out += "error: " + e + "\n";
    return out;
  }
  out += "bench: " + report.bench + "\n";
  for (const MetricDelta& d : report.deltas) {
    char line[256];
    std::snprintf(line, sizeof(line), "  %-24s %14.6g -> %14.6g  %+7.2f%%%s\n",
                  d.name.c_str(), d.baseline, d.candidate, d.change * 100.0,
                  d.regressed ? "  REGRESSION" : "");
    out += line;
  }
  out += report.regression ? "RESULT: regression\n" : "RESULT: ok\n";
  return out;
}

}  // namespace mlcr::benchdiff
