// benchdiff driver: compare a checked-in bench baseline JSON with a fresh
// run and exit non-zero when a gated quantity (events_per_sec, wall_ms)
// regressed past the threshold. CI's perf-smoke job runs it warn-only so
// noisy runners annotate instead of block; locally, drop --warn-only to
// gate.
//
//   benchdiff <baseline.json> <candidate.json> [--threshold 0.2]
//             [--warn-only]
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "benchdiff/diff.hpp"

namespace {

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path;
  std::string candidate_path;
  mlcr::benchdiff::DiffOptions options;
  bool warn_only = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threshold" && i + 1 < argc)
      options.threshold = std::atof(argv[++i]);
    else if (arg == "--warn-only")
      warn_only = true;
    else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: benchdiff <baseline.json> <candidate.json> "
                   "[--threshold 0.2] [--warn-only]\n";
      return 0;
    } else if (baseline_path.empty())
      baseline_path = arg;
    else if (candidate_path.empty())
      candidate_path = arg;
    else {
      std::cerr << "unexpected argument: " << arg << "\n";
      return 2;
    }
  }
  if (baseline_path.empty() || candidate_path.empty()) {
    std::cerr << "usage: benchdiff <baseline.json> <candidate.json> "
                 "[--threshold 0.2] [--warn-only]\n";
    return 2;
  }

  std::string baseline_text;
  std::string candidate_text;
  if (!read_file(baseline_path, baseline_text)) {
    std::cerr << "cannot read " << baseline_path << "\n";
    return 2;
  }
  if (!read_file(candidate_path, candidate_text)) {
    std::cerr << "cannot read " << candidate_path << "\n";
    return 2;
  }

  const auto report = mlcr::benchdiff::diff_bench_json(
      baseline_text, candidate_text, options);
  std::cout << mlcr::benchdiff::format_report(report);
  if (!report.ok()) return 2;
  if (report.regression && !warn_only) return 1;
  if (report.regression) std::cout << "(--warn-only: exiting 0)\n";
  return 0;
}
