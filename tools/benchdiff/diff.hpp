// benchdiff core: compare two bench result JSON files (the stable schema
// obs::check_bench_json validates, emitted by every bench's --json flag) and
// decide whether the candidate regressed past a threshold. A library so the
// fixture tests can drive the comparison directly; tools/benchdiff/main.cpp
// wraps it as the CLI CI's perf-smoke job runs.
#pragma once

#include <string>
#include <vector>

namespace mlcr::benchdiff {

struct DiffOptions {
  /// Relative drop in events_per_sec (and relative rise in wall_ms) that
  /// counts as a regression: 0.2 fails when the candidate is more than 20%
  /// slower than the baseline.
  double threshold = 0.2;
};

/// One compared quantity. `change` is relative to the baseline, signed so
/// that positive is better (throughput up / wall time down).
struct MetricDelta {
  std::string name;
  double baseline = 0.0;
  double candidate = 0.0;
  /// (candidate - baseline) / |baseline| with the sign flipped for
  /// lower-is-better quantities; 0 when the baseline is 0.
  double change = 0.0;
  bool regressed = false;
};

struct DiffReport {
  /// Schema/parse problems; non-empty means the comparison never ran.
  std::vector<std::string> errors;
  std::string bench;  ///< bench name (must match between the two files)
  /// events_per_sec, wall_ms, then every metric present in both files (in
  /// baseline order). Only events_per_sec and wall_ms gate the exit code;
  /// metrics are informational.
  std::vector<MetricDelta> deltas;
  bool regression = false;

  [[nodiscard]] bool ok() const noexcept { return errors.empty(); }
};

/// Compare two bench JSON documents (text, not paths). Never throws on bad
/// input — problems land in DiffReport::errors.
[[nodiscard]] DiffReport diff_bench_json(const std::string& baseline_text,
                                         const std::string& candidate_text,
                                         const DiffOptions& options = {});

/// Human-readable rendering of a report (one line per delta).
[[nodiscard]] std::string format_report(const DiffReport& report);

}  // namespace mlcr::benchdiff
